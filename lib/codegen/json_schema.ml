module Dv = Fsdata_data.Data_value
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity

let obj fields = Dv.Record (Dv.json_record_name, fields)
let str s = Dv.String s
let typ name = obj [ ("type", str name) ]

let rec schema (s : Shape.t) : Dv.t =
  match s with
  | Bottom -> Dv.Bool false (* rejects everything: nothing was observed *)
  | Null -> typ "null"
  | Primitive p -> primitive p
  | Nullable inner ->
      obj [ ("anyOf", Dv.List [ schema inner; typ "null" ]) ]
  | Record { fields; _ } ->
      let required =
        List.filter_map
          (fun (n, fs) ->
            match fs with
            | Shape.Null | Shape.Nullable _ | Shape.Collection _ | Shape.Top _
              ->
                None (* null-admitting fields may be absent *)
            | _ -> Some (str n))
          fields
      in
      obj
        ([
           ("type", str "object");
           ( "properties",
             obj (List.map (fun (n, fs) -> (n, schema fs)) fields) );
         ]
        @ (if required = [] then [] else [ ("required", Dv.List required) ]))
  | Collection entries -> collection entries
  | Top [] -> obj [] (* the empty schema accepts everything *)
  | Top labels ->
      (* permissive, but documenting the statically known cases *)
      obj
        [
          ("description", str "open world: any value; known cases in anyOf");
          ("anyOf", Dv.List (List.map schema labels @ [ Dv.Bool true ]));
        ]

and primitive (p : Shape.primitive) : Dv.t =
  match p with
  | Shape.Bool -> typ "boolean"
  | Shape.Int -> typ "integer"
  | Shape.Float -> typ "number"
  | Shape.String -> typ "string"
  | Shape.Bit0 -> obj [ ("enum", Dv.List [ Dv.Int 0 ]) ]
  | Shape.Bit1 -> obj [ ("enum", Dv.List [ Dv.Int 1 ]) ]
  | Shape.Bit ->
      obj [ ("enum", Dv.List [ Dv.Int 0; Dv.Int 1; Dv.Bool false; Dv.Bool true ]) ]
  | Shape.Date -> obj [ ("type", str "string"); ("format", str "date-time") ]

and collection entries : Dv.t =
  (* collections are nullable in the paper's algebra — hasShape([s], null)
     is true and the runtime reads null as the empty collection — so every
     collection schema also accepts null *)
  obj [ ("anyOf", Dv.List [ collection_array entries; typ "null" ]) ]

and collection_array entries : Dv.t =
  let non_null =
    List.filter (fun (e : Shape.entry) -> e.shape <> Shape.Null) entries
  in
  let has_null =
    List.exists (fun (e : Shape.entry) -> e.shape = Shape.Null) entries
  in
  match non_null with
  | [] ->
      (* only nulls (or nothing) observed *)
      obj
        [
          ("type", str "array");
          ("items", if has_null then typ "null" else Dv.Bool false);
        ]
  | [ e ] ->
      let item =
        if has_null then
          obj [ ("anyOf", Dv.List [ schema e.shape; typ "null" ]) ]
        else schema e.shape
      in
      obj [ ("type", str "array"); ("items", item) ]
  | many ->
      let mult_doc =
        String.concat ", "
          (List.map
             (fun (e : Shape.entry) ->
               Fmt.str "%a: %a" Fsdata_core.Tag.pp (Shape.tagof e.shape)
                 Mult.pp e.mult)
             many)
      in
      let cases =
        List.map (fun (e : Shape.entry) -> schema e.shape) many
        (* trailing true: elements of unknown tags are permitted (open
           world) — the runtime never accesses them *)
        @ [ Dv.Bool true ]
      in
      obj
        [
          ("type", str "array");
          ("items", obj [ ("anyOf", Dv.List cases) ]);
          ( "description",
            str
              ("open heterogeneous collection; known cases and multiplicities: "
             ^ mult_doc) );
        ]

let of_shape s =
  match schema s with
  | Dv.Record (name, fields) ->
      Dv.Record
        (name, ("$schema", str "http://json-schema.org/draft-07/schema#") :: fields)
  | other -> other

let to_string ?(indent = 2) s = Fsdata_data.Json.to_string ~indent (of_shape s)
