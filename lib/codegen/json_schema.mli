(** Exporting inferred shapes as JSON Schema.

    Shapes are the paper's schema-free answer to typed data access; many
    downstream tools, however, speak JSON Schema. This module renders a
    shape as a draft-07-style schema document so inferred shapes can flow
    into validators, editors and generators outside this library.

    The mapping is the natural one, with the paper's semantics preserved:

    - primitives map to JSON Schema types ([bit0]/[bit1]/[bit] map to the
      enum of values they admit; [date] to a string with
      ["format": "date-time"]);
    - [nullable s] maps to [anyOf [s; {"type":"null"}]];
    - records map to [object] with [properties]; non-nullable fields are
      [required]. [additionalProperties] stays true — the open world;
    - homogeneous collections map to [array]/[items]; heterogeneous
      collections to an array whose items match [anyOf] of the entries
      (multiplicities have no JSON Schema counterpart and are recorded in
      a [description]);
    - [any] (with or without labels) maps to the empty schema [{}], which
      accepts everything — labels are advisory and go to [anyOf] inside a
      non-asserting [description]-bearing wrapper? No: labels are listed
      in [anyOf] together with the catch-all [true] schema, keeping the
      schema permissive while documenting the known cases;
    - [null] maps to [{"type":"null"}] and [⊥] to [false] (the schema
      rejecting everything — nothing was observed).

    Guarantee (tested): if [Shape_check.has_shape s d] then the schema of
    [s] accepts the JSON rendering of [d] under the semantics above. *)

val of_shape : Fsdata_core.Shape.t -> Fsdata_data.Data_value.t
(** The schema as a data value (render with {!Fsdata_data.Json.to_string}). *)

val to_string : ?indent:int -> Fsdata_core.Shape.t -> string
(** Render directly to JSON text; default [indent] is 2. *)
