open Fsdata_foo.Syntax
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity

let keywords =
  [
    "and"; "as"; "assert"; "begin"; "class"; "constraint"; "do"; "done";
    "downto"; "else"; "end"; "exception"; "external"; "false"; "for"; "fun";
    "function"; "functor"; "if"; "in"; "include"; "inherit"; "initializer";
    "lazy"; "let"; "match"; "method"; "module"; "mutable"; "new"; "nonrec";
    "object"; "of"; "open"; "or"; "private"; "rec"; "sig"; "struct"; "then";
    "to"; "true"; "try"; "type"; "val"; "virtual"; "when"; "while"; "with";
  ]

let uncapitalize s =
  if s = "" then "value"
  else String.uncapitalize_ascii s

let escape s = if List.mem s keywords then s ^ "_" else s

let ml_type_name s = escape (uncapitalize s)
let ml_field_name s = escape (uncapitalize s)

let rec ml_ty = function
  | TInt -> "int"
  | TFloat -> "float"
  | TBool -> "bool"
  | TString -> "string"
  | TDate -> "Fsdata_data.Date.t"
  | TData -> "Fsdata_data.Data_value.t"
  | TClass c -> ml_type_name c
  | TList t -> ml_ty_atom t ^ " list"
  | TOption t -> ml_ty_atom t ^ " option"
  | TArrow (a, b) -> Printf.sprintf "%s -> %s" (ml_ty_atom a) (ml_ty b)

and ml_ty_atom t =
  match t with
  | TArrow _ -> "(" ^ ml_ty t ^ ")"
  | _ -> ml_ty t

let quote s = Printf.sprintf "%S" s

let rec shape_literal (s : Shape.t) =
  match s with
  | Bottom -> "Shape.Bottom"
  | Null -> "Shape.Null"
  | Primitive p ->
      let name =
        match p with
        | Shape.Bit0 -> "Bit0"
        | Shape.Bit1 -> "Bit1"
        | Shape.Bit -> "Bit"
        | Shape.Bool -> "Bool"
        | Shape.Int -> "Int"
        | Shape.Float -> "Float"
        | Shape.String -> "String"
        | Shape.Date -> "Date"
      in
      Printf.sprintf "Shape.Primitive Shape.%s" name
  | Record { name; fields } ->
      Printf.sprintf "Shape.record %s [%s]" (quote name)
        (String.concat "; "
           (List.map
              (fun (f, fs) -> Printf.sprintf "(%s, %s)" (quote f) (shape_literal fs))
              fields))
  | Nullable p -> Printf.sprintf "Shape.nullable (%s)" (shape_literal p)
  | Collection entries ->
      if entries = [] then "Shape.collection Shape.Bottom"
      else
        Printf.sprintf "Shape.hetero [%s]"
          (String.concat "; "
             (List.map
                (fun (e : Shape.entry) ->
                  let m =
                    match e.mult with
                    | Mult.Single -> "Fsdata_core.Multiplicity.Single"
                    | Mult.Optional_single ->
                        "Fsdata_core.Multiplicity.Optional_single"
                    | Mult.Multiple -> "Fsdata_core.Multiplicity.Multiple"
                  in
                  Printf.sprintf "(%s, %s)" (shape_literal e.shape) m)
                entries))
  | Top labels ->
      Printf.sprintf "Shape.top [%s]"
        (String.concat "; " (List.map shape_literal labels))

(* ----- Compiling provider-generated Foo expressions to OCaml source ----- *)

let unsupported what =
  invalid_arg
    (Printf.sprintf
       "Codegen: unsupported construct in provider output (%s) — provider bug?"
       what)

(* [opaque] is the set of class names generated without members; they are
   aliases of Data_value.t rather than records, so "new C(d)" is just d. *)
let rec compile_expr ~opaque env (e : expr) : string =
  match e with
  | EVar x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> unsupported ("free variable " ^ x))
  | EApp (f, x) ->
      Printf.sprintf "(%s) (%s)"
        (compile_fun ~opaque env f)
        (compile_expr ~opaque env x)
  | ENew (c, [ arg ]) ->
      if List.mem c opaque then compile_expr ~opaque env arg
      else
        Printf.sprintf "%s_of_data (%s)" (ml_type_name c)
          (compile_expr ~opaque env arg)
  | ESome e1 -> Printf.sprintf "Some (%s)" (compile_expr ~opaque env e1)
  | ENone _ -> "None"
  | EIf (c, t, f) ->
      Printf.sprintf "(if %s then %s else %s)"
        (compile_expr ~opaque env c)
        (compile_expr ~opaque env t)
        (compile_expr ~opaque env f)
  | EOp op -> compile_op ~opaque env op
  | EData Fsdata_data.Data_value.Null -> "Fsdata_data.Data_value.Null"
  | _ -> unsupported (expr_to_string e)

and compile_fun ~opaque env (e : expr) : string =
  match e with
  | ELam (x, _, body) ->
      let v = "v_" ^ string_of_int (List.length env) in
      Printf.sprintf "(fun %s -> %s)" v (compile_expr ~opaque ((x, v) :: env) body)
  | _ -> compile_expr ~opaque env e

and compile_op ~opaque env (op : op) : string =
  let e = compile_expr ~opaque env in
  let f = compile_fun ~opaque env in
  match op with
  | ConvPrim (Shape.Primitive Shape.Int, e1) -> Printf.sprintf "Ops.conv_int (%s)" (e e1)
  | ConvPrim (Shape.Primitive Shape.String, e1) ->
      Printf.sprintf "Ops.conv_string (%s)" (e e1)
  | ConvPrim (Shape.Primitive Shape.Bool, e1) ->
      Printf.sprintf "Ops.conv_bool (%s)" (e e1)
  | ConvPrim _ -> unsupported "convPrim with a non-primitive shape"
  | ConvFloat (_, e1) -> Printf.sprintf "Ops.conv_float (%s)" (e e1)
  | ConvBool e1 -> Printf.sprintf "Ops.conv_bit_bool (%s)" (e e1)
  | ConvDate e1 -> Printf.sprintf "Ops.conv_date (%s)" (e e1)
  | ConvField (nu, field, e1, k) ->
      Printf.sprintf "(%s) (Ops.conv_field ~record:%s ~field:%s (%s))" (f k)
        (quote nu) (quote field) (e e1)
  | ConvNull (e1, k) -> Printf.sprintf "Ops.conv_null (%s) (%s)" (f k) (e e1)
  | ConvElements (e1, k) ->
      Printf.sprintf "Ops.conv_elements (%s) (%s)" (f k) (e e1)
  | HasShape (s, e1) ->
      Printf.sprintf "Ops.has_shape (%s) (%s)" (shape_literal s) (e e1)
  | ConvSelect (s, mult, e1, k) ->
      let fn =
        match mult with
        | Mult.Single -> "Ops.select_single"
        | Mult.Optional_single -> "Ops.select_optional"
        | Mult.Multiple -> "Ops.select_multiple"
      in
      Printf.sprintf "%s (%s) (%s) (%s)" fn (shape_literal s) (f k) (e e1)
  | IntOfFloat e1 -> Printf.sprintf "int_of_float (%s)" (e e1)

(* Observability (docs/OBSERVABILITY.md): a [codegen.generate] span per
   emitted module; [codegen.bytes] totals the generated source size. *)
let m_runs = Fsdata_obs.Metrics.counter "codegen.runs"
let m_bytes = Fsdata_obs.Metrics.counter "codegen.bytes"

let generate ?module_comment (p : Fsdata_provider.Provide.t) : string =
  Fsdata_obs.Trace.with_span "codegen.generate" @@ fun () ->
  Fsdata_obs.Metrics.incr m_runs;
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  (match module_comment with
  | Some c -> pr "(* %s *)\n" c
  | None ->
      pr
        "(* Generated by fsdata codegen — do not edit.\n\
        \   Typed access to documents matching the inferred shape:\n\
        \   %s *)\n"
        (Fmt.str "%a" Shape.pp p.shape));
  pr "\n[@@@warning \"-39\"] (* converter blocks are emitted with let rec *)\n";
  pr "\nmodule Ops = Fsdata_runtime.Ops\nmodule Shape = Fsdata_core.Shape\n";
  pr "\nlet _ = Shape.Bottom (* silence unused-module warnings in tiny schemas *)\n\n";
  let opaque =
    List.filter_map
      (fun (c : class_def) -> if c.members = [] then Some c.class_name else None)
      p.classes
  in
  (* Type declarations as one mutually recursive block: global XML
     provision can produce genuinely recursive classes (an element
     containing itself), and the and-chain is harmless otherwise. *)
  List.iteri
    (fun i (c : class_def) ->
      let kw = if i = 0 then "type" else "and" in
      if c.members = [] then
        pr "%s %s = Fsdata_data.Data_value.t\n\n" kw (ml_type_name c.class_name)
      else begin
        pr "%s %s = {\n" kw (ml_type_name c.class_name);
        List.iter
          (fun (m : member_def) ->
            pr "  %s : %s;\n" (ml_field_name m.member_name) (ml_ty m.member_ty))
          c.members;
        pr "}\n\n"
      end)
    p.classes;
  (* Conversion functions, likewise one recursive block. *)
  let converted =
    List.filter (fun (c : class_def) -> c.members <> []) p.classes
  in
  List.iteri
    (fun i (c : class_def) ->
      let kw = if i = 0 then "let rec" else "and" in
      let param =
        match c.ctor_params with
        | [ (x, TData) ] -> x
        | _ -> unsupported "class with non-standard constructor"
      in
      pr "%s %s_of_data (d : Fsdata_data.Data_value.t) : %s =\n" kw
        (ml_type_name c.class_name) (ml_type_name c.class_name);
      pr "  {\n";
      List.iter
        (fun (m : member_def) ->
          pr "    %s = %s;\n"
            (ml_field_name m.member_name)
            (compile_expr ~opaque [ (param, "d") ] m.member_body))
        c.members;
      pr "  }\n\n")
    converted;
  pr "type t = %s\n\n" (ml_ty p.root_ty);
  pr "let of_data (d : Fsdata_data.Data_value.t) : t =\n  (%s) d\n\n"
    (compile_fun ~opaque [] p.conv);
  (match p.format with
  | `Json ->
      pr
        "let parse (text : string) : t =\n\
        \  of_data (Fsdata_data.Primitive.normalize (Fsdata_data.Json.parse \
         text))\n\n"
  | `Xml ->
      pr
        "let parse (text : string) : t =\n\
        \  of_data (Fsdata_data.Xml.to_data ~convert_primitives:true \
         (Fsdata_data.Xml.parse text))\n\n"
  | `Csv ->
      pr
        "let parse (text : string) : t =\n\
        \  of_data (Fsdata_data.Csv.to_data ~convert_primitives:true \
         (Fsdata_data.Csv.parse text))\n\n");
  pr
    "let load (path : string) : t =\n\
    \  let ic = open_in_bin path in\n\
    \  let text = really_input_string ic (in_channel_length ic) in\n\
    \  close_in ic;\n\
    \  parse text\n";
  Fsdata_obs.Metrics.add m_bytes (Buffer.length buf);
  Buffer.contents buf
