(** OCaml code generation from provided types.

    OCaml has no compile-time type providers, so alongside the dynamic
    {!Fsdata_runtime.Typed} runtime this module offers the static half of
    the substitution (see DESIGN.md): it compiles the classes produced by
    {!Fsdata_provider.Provide} into the source text of a self-contained
    OCaml module — one record type per provided class, [option] for
    nullable members, conversion functions that bottom out in
    {!Fsdata_runtime.Ops}, and a [parse] entry point, so that typed access
    is ordinary (statically type-checked) OCaml field access:

    {[
      (* generated from people.json *)
      type entity = { name : string; age : float option }
      type t = entity list
      val parse : string -> t
    ]}

    The compiler accepts exactly the expression fragment the provider
    emits (conversion ops, lambdas, [if hasShape ... then Some ... else
    None], class construction); anything else raises [Invalid_argument] —
    it would indicate a provider bug. *)

val ml_type_name : string -> string
(** Map a provided class name to an OCaml type name: lowercase the first
    letter and escape OCaml keywords by appending ["_"]. *)

val ml_field_name : string -> string
(** Map a provided member name to an OCaml record field name. *)

val shape_literal : Fsdata_core.Shape.t -> string
(** An OCaml expression (as source text) that rebuilds the shape at
    runtime, used for the [hasShape] guards and heterogeneous-collection
    selectors in generated code. *)

val generate : ?module_comment:string -> Fsdata_provider.Provide.t -> string
(** The full module source. *)
