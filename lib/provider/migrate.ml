open Fsdata_foo.Syntax

type error = Unsupported of string

let pp_error ppf (Unsupported m) = Fmt.pf ppf "cannot migrate: %s" m

let ( let* ) r f = Result.bind r f
let err fmt = Printf.ksprintf (fun m -> Error (Unsupported m)) fmt

let fresh =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "mig%%%d" !n

(* rule 1: match e with Some v -> k v | None -> exn *)
let unwrap k e =
  let v = fresh () in
  EMatchOption (e, v, k (EVar v), EExn)

(* Head compatibility: does the new type already present the same
   interface constructor as the old one? *)
let same_head (nt : ty) (ot : ty) =
  match (nt, ot) with
  | TInt, TInt | TFloat, TFloat | TBool, TBool | TString, TString
  | TDate, TDate | TData, TData ->
      true
  | TList _, TList _ | TOption _, TOption _ | TClass _, TClass _
  | TArrow _, TArrow _ ->
      true
  | TFloat, TInt -> false (* needs rule 3 *)
  | _ -> false

let member_ty classes c m =
  match find_class classes c with
  | None -> None
  | Some cls -> (
      match find_member cls m with
      | Some md -> Some md.member_ty
      | None -> None)

(* The record name a provided class reads its fields from: every member
   body starts with convField(ν, ...), so ν identifies the record shape a
   class was generated for — the stable correspondence between old and
   new classes across an evolution. *)
let record_name_of_class classes c =
  match find_class classes c with
  | None -> None
  | Some cls ->
      List.find_map
        (fun (m : member_def) ->
          match m.member_body with
          | EOp (ConvField (nu, _, _, _)) -> Some nu
          | _ -> None)
        cls.members

(* members of an old class, for matching labels of a top *)
let member_names classes c =
  match find_class classes c with
  | Some cls -> Some (List.map (fun m -> m.member_name) cls.members)
  | None -> None

(* rule 2 target: the label member of top class [d] whose payload presents
   the old type's interface; among class labels, the one generated for the
   old class's record name wins. *)
let select_label ~new_classes ~old_classes d (ot : ty) =
  match find_class new_classes d with
  | None -> None
  | Some cls ->
      let name_matches c' c_old =
        match
          ( record_name_of_class new_classes c',
            record_name_of_class old_classes c_old )
        with
        | Some a, Some b -> String.equal a b
        | _ -> false
      in
      let covers c' c_old =
        match (member_names new_classes c', member_names old_classes c_old) with
        | Some new_ms, Some old_ms ->
            old_ms <> [] && List.for_all (fun m -> List.mem m new_ms) old_ms
        | _ -> false
      in
      let candidate strict (md : member_def) =
        match md.member_ty with
        | TOption p ->
            let matches =
              match (p, ot) with
              | TClass c', TClass c_old ->
                  if strict then name_matches c' c_old else covers c' c_old
              | TFloat, (TInt | TFloat) -> not strict
              | p, ot -> (not strict) && same_head p ot
            in
            if matches then Some (md.member_name, p) else None
        | _ -> None
      in
      (match List.find_map (candidate true) cls.members with
      | Some _ as r -> r
      | None -> List.find_map (candidate false) cls.members)

(* Realign a new-typed expression until its type presents the old type's
   head constructor, applying rules 1-3 outside-in. *)
let rec realign ~new_classes ~old_classes e (ot : ty) (nt : ty) :
    (expr * ty, error) result =
  if same_head nt ot then Ok (e, nt)
  else
    match (nt, ot) with
    | TOption nt', _ ->
        (* rule 1 *)
        realign ~new_classes ~old_classes (unwrap (fun v -> v) e) ot nt'
    | TClass d, TOption ot' -> (
        (* rule 2 into an optional position: the label member is already
           the option — old null inputs fail the label's shape test and
           read as None, matching the old option semantics *)
        match select_label ~new_classes ~old_classes d ot' with
        | Some (k, p) -> Ok (EMember (e, k), TOption p)
        | None ->
            err "no label of %s presents the interface %s" d (ty_to_string ot'))
    | TClass d, _ -> (
        (* rule 2 *)
        match select_label ~new_classes ~old_classes d ot with
        | Some (k, p) ->
            realign ~new_classes ~old_classes
              (unwrap (fun v -> v) (EMember (e, k)))
              ot p
        | None ->
            err "no label of %s presents the interface %s" d (ty_to_string ot))
    | TFloat, TInt ->
        (* rule 3 *)
        Ok (EOp (IntOfFloat e), TInt)
    | _ ->
        err "no rule realigns %s to %s" (ty_to_string nt) (ty_to_string ot)

let rec coerce ~new_classes ~old_classes (nt : ty) (ot : ty) :
    (expr -> expr, error) result =
  if ty_equal nt ot then Ok (fun e -> e)
  else
    match (nt, ot) with
    (* rule 1 at matching option heads: coerce the payload *)
    | TOption nt', TOption ot' when not (ty_equal nt' ot') ->
        let* f = coerce ~new_classes ~old_classes nt' ot' in
        Ok
          (fun e ->
            let v = fresh () in
            EMatchOption (e, v, ESome (f (EVar v)), ENone ot'))
    (* nominal classes: the provider names classes stably, so a class of
       the same name is "the same type" in the Remark 1 sense *)
    | TClass a, TClass b when String.equal a b -> Ok (fun e -> e)
    | TClass _, TClass _ -> Ok (fun e -> e)
    | TList nt', TList ot' when ty_equal nt' ot' -> Ok (fun e -> e)
    | TList (TClass _), TList (TClass _) -> Ok (fun e -> e)
    | TList _, TList _ ->
        err
          "a list's element type changed; rebind the elements (the rules
           apply at binding sites, Foo has no map)"
    | _ ->
        (* realign the head, then coerce the rest *)
        let x = fresh () in
        let* e', nt' = realign ~new_classes ~old_classes (EVar x) ot nt in
        if ty_equal nt' nt then
          err "no rule bridges %s to %s" (ty_to_string nt) (ty_to_string ot)
        else
          let* f = coerce ~new_classes ~old_classes nt' ot in
          Ok
            (fun e ->
              (* substitute the realigned context around e *)
              Fsdata_foo.Syntax.subst x e (f e'))

(* The typed environment: each variable with its type under the old and
   the new classes. *)
type entry = { old_ty : ty; new_ty : ty }

(* rule 2 lookup: in a labelled-top class D, the member whose payload
   class carries member [m]; when several labels qualify, prefer the one
   generated for the same record name as the old class. *)
let top_route ~old_classes ~old_c classes d m =
  match find_class classes d with
  | None -> None
  | Some cls ->
      let candidates =
        List.filter_map
          (fun (md : member_def) ->
            match md.member_ty with
            | TOption (TClass c') ->
                if member_ty classes c' m <> None then Some (md.member_name, c')
                else None
            | _ -> None)
          cls.members
      in
      let old_nu = record_name_of_class old_classes old_c in
      let preferred =
        List.find_opt
          (fun (_, c') ->
            old_nu <> None && record_name_of_class classes c' = old_nu)
          candidates
      in
      (match preferred with
      | Some _ -> preferred
      | None -> ( match candidates with c :: _ -> Some c | [] -> None))

let rec rewrite ~new_classes ~old_classes env (e : expr) :
    (expr * ty * ty, error) result =
  let recur = rewrite ~new_classes ~old_classes env in
  match e with
  | EVar x -> (
      match List.assoc_opt x env with
      | Some { old_ty; new_ty } -> Ok (EVar x, old_ty, new_ty)
      | None -> err "unbound variable %s" x)
  | EMember (e0, m) ->
      let* e0', ot0, nt0 = recur e0 in
      member_access ~new_classes ~old_classes (e0', ot0, nt0) m
  | EEq (e1, e2) ->
      let* e1', ot1, nt1 = recur e1 in
      let* e2', ot2, nt2 = recur e2 in
      if not (ty_equal ot1 ot2) then err "ill-typed source equality"
      else if ty_equal nt1 nt2 then Ok (EEq (e1', e2'), TBool, TBool)
      else
        (* realign both sides to the old interface; corresponding new
           classes wrap the same underlying data, so comparing at the
           realigned new types agrees with the old comparison *)
        let* e1'', nt1' = realign ~new_classes ~old_classes e1' ot1 nt1 in
        let* e2'', nt2' = realign ~new_classes ~old_classes e2' ot2 nt2 in
        if ty_equal nt1' nt2' then Ok (EEq (e1'', e2''), TBool, TBool)
        else
          (* last resort: coerce both sides fully back to the old type *)
          let* f1 = coerce ~new_classes ~old_classes nt1' ot1 in
          let* f2 = coerce ~new_classes ~old_classes nt2' ot2 in
          Ok (EEq (f1 e1'', f2 e2''), TBool, TBool)
  | EIf (c, t, f) ->
      let* c', otc, ntc = recur c in
      if not (ty_equal otc TBool) then err "ill-typed source condition"
      else
        let* fc = coerce ~new_classes ~old_classes ntc TBool in
        let* t', ott, ntt = branch recur t in
        let* f', otf, ntf = branch recur f in
        let* body_t, body_f, ot, nt =
          join_branches ~new_classes ~old_classes (t', ott, ntt) (f', otf, ntf)
        in
        Ok (EIf (fc c', body_t, body_f), ot, nt)
  | EMatchOption (e0, x, e1, e2) -> (
      let* e0', ot0, nt0 = recur e0 in
      let* e0', nt0 = realign ~new_classes ~old_classes e0' ot0 nt0 in
      match (ot0, nt0) with
      | TOption otx, TOption ntx ->
          let env' = (x, { old_ty = otx; new_ty = ntx }) :: env in
          let* e1', ot1, nt1 =
            branch (rewrite ~new_classes ~old_classes env') e1
          in
          let* e2', ot2, nt2 = branch recur e2 in
          let* b1, b2, ot, nt =
            join_branches ~new_classes ~old_classes (e1', ot1, nt1)
              (e2', ot2, nt2)
          in
          Ok (EMatchOption (e0', x, b1, b2), ot, nt)
      | _ -> err "option match on a non-option")
  | EMatchList (e0, x1, x2, e1, e2) -> (
      let* e0', ot0, nt0 = recur e0 in
      let* e0', nt0 = realign ~new_classes ~old_classes e0' ot0 nt0 in
      match (ot0, nt0) with
      | TList otx, TList ntx ->
          let env' =
            (x1, { old_ty = otx; new_ty = ntx })
            :: (x2, { old_ty = ot0; new_ty = nt0 })
            :: env
          in
          let* e1', ot1, nt1 =
            branch (rewrite ~new_classes ~old_classes env') e1
          in
          let* e2', ot2, nt2 = branch recur e2 in
          let* b1, b2, ot, nt =
            join_branches ~new_classes ~old_classes (e1', ot1, nt1)
              (e2', ot2, nt2)
          in
          Ok (EMatchList (e0', x1, x2, b1, b2), ot, nt)
      | _ -> err "list match on a non-list")
  | ESome e1 ->
      let* e1', ot1, nt1 = recur e1 in
      Ok (ESome e1', TOption ot1, TOption nt1)
  | EOp (IntOfFloat e1) ->
      (* the user program may already contain the rule 3 coercion *)
      let* e1', ot1, nt1 = recur e1 in
      let* f =
        match nt1 with
        | TInt | TFloat -> Ok (fun e -> e)
        | TOption ((TInt | TFloat) as inner) ->
            let* g = coerce ~new_classes ~old_classes (TOption inner) inner in
            Ok g
        | t -> err "int(e) applied to %s after migration" (ty_to_string t)
      in
      ignore ot1;
      Ok (EOp (IntOfFloat (f e1')), TInt, TInt)
  | EExn -> err "exn outside a branch position"
  | EData _ | EDate _ | ENone _ | ENil _ | ECons _ | EApp _ | ELam _ | ENew _
  | EOp _ ->
      err "construct outside the migratable user fragment: %s"
        (expr_to_string e)

(* exn is polymorphic: a branch that is literally exn adopts the other
   branch's types *)
and branch recur e =
  match e with
  | EExn -> Ok (EExn, TData, TData) (* placeholder; fixed in join *)
  | _ -> recur e

and join_branches ~new_classes ~old_classes (e1, ot1, nt1) (e2, ot2, nt2) =
  match (e1, e2) with
  | EExn, EExn -> Ok (e1, e2, ot2, nt2)
  | EExn, _ -> Ok (e1, e2, ot2, nt2)
  | _, EExn -> Ok (e1, e2, ot1, nt1)
  | _ ->
      if not (ty_equal ot1 ot2) then err "ill-typed source branches"
      else if ty_equal nt1 nt2 then Ok (e1, e2, ot1, nt1)
      else
        (* branches evolved differently: settle both on the old type *)
        let* f1 = coerce ~new_classes ~old_classes nt1 ot1 in
        let* f2 = coerce ~new_classes ~old_classes nt2 ot2 in
        Ok (f1 e1, f2 e2, ot1, ot1)

and member_access ~new_classes ~old_classes (e0, ot0, nt0) m =
  (* the old program accessed member m on a value of old class ot0 *)
  let* old_c =
    match ot0 with
    | TClass c -> Ok c
    | t -> err "member access on old non-class type %s" (ty_to_string t)
  in
  let* old_m_ty =
    match member_ty old_classes old_c m with
    | Some t -> Ok t
    | None -> err "old class %s has no member %s" old_c m
  in
  (* normalize the new side: strip options (rule 1) until a class *)
  let rec route e0 nt =
    match nt with
    | TOption nt' -> route (unwrap (fun v -> v) e0) nt'
    | TClass d -> (
        match member_ty new_classes d m with
        | Some new_m_ty -> Ok (EMember (e0, m), new_m_ty)
        | None -> (
            (* rule 2: the class became a label of a top *)
            match top_route ~old_classes ~old_c new_classes d m with
            | Some (k, c') -> (
                let selected = unwrap (fun v -> v) (EMember (e0, k)) in
                match member_ty new_classes c' m with
                | Some new_m_ty -> Ok (EMember (selected, m), new_m_ty)
                | None -> err "label class %s lost member %s" c' m)
            | None -> err "no route to member %s in new class %s" m d))
    | t -> err "member access on new non-class type %s" (ty_to_string t)
  in
  let* e', new_m_ty = route e0 nt0 in
  Ok (e', old_m_ty, new_m_ty)

(* The rewrite draws binder names from a process-global counter, so the
   same input migrated twice (or via different version chains) would
   differ only in the [mig%N] suffixes. Renumbering them in traversal
   order makes the output a function of the input alone — composed
   migrations agree byte-for-byte and cached responses are
   reproducible. Generated names are globally unique, so a flat
   old-name -> canonical-name map cannot capture. *)
let normalize_fresh e =
  let map = Hashtbl.create 8 in
  let next = ref 0 in
  let is_fresh x = String.length x > 4 && String.sub x 0 4 = "mig%" in
  let bind x =
    if is_fresh x && not (Hashtbl.mem map x) then begin
      incr next;
      Hashtbl.replace map x (Printf.sprintf "mig%%%d" !next)
    end
  in
  let name x = match Hashtbl.find_opt map x with Some y -> y | None -> x in
  let rec go e =
    match e with
    | EData _ | EDate _ | ENone _ | ENil _ | EExn -> e
    | EVar x -> EVar (name x)
    | ELam (x, ty, body) ->
        bind x;
        ELam (name x, ty, go body)
    | EApp (e1, e2) -> EApp (go e1, go e2)
    | EMember (e1, m) -> EMember (go e1, m)
    | ENew (c, args) -> ENew (c, List.map go args)
    | ESome e1 -> ESome (go e1)
    | EMatchOption (e0, x, e1, e2) ->
        bind x;
        let e0 = go e0 in
        EMatchOption (e0, name x, go e1, go e2)
    | EEq (e1, e2) -> EEq (go e1, go e2)
    | EIf (e1, e2, e3) -> EIf (go e1, go e2, go e3)
    | ECons (e1, e2) -> ECons (go e1, go e2)
    | EMatchList (e0, x1, x2, e1, e2) ->
        bind x1;
        bind x2;
        let e0 = go e0 in
        EMatchList (e0, name x1, name x2, go e1, go e2)
    | EOp op -> EOp (go_op op)
  and go_op op =
    match op with
    | ConvFloat (s, e1) -> ConvFloat (s, go e1)
    | ConvPrim (s, e1) -> ConvPrim (s, go e1)
    | ConvField (a, b, e1, e2) -> ConvField (a, b, go e1, go e2)
    | ConvNull (e1, e2) -> ConvNull (go e1, go e2)
    | ConvElements (e1, e2) -> ConvElements (go e1, go e2)
    | HasShape (s, e1) -> HasShape (s, go e1)
    | ConvBool e1 -> ConvBool (go e1)
    | ConvDate e1 -> ConvDate (go e1)
    | ConvSelect (s, m, e1, e2) -> ConvSelect (s, m, go e1, go e2)
    | IntOfFloat e1 -> IntOfFloat (go e1)
  in
  go e

let migrate ~(old_provided : Provide.t) ~(new_provided : Provide.t) e =
  let old_classes = old_provided.Provide.classes in
  let new_classes = new_provided.Provide.classes in
  let env =
    [
      ( "y",
        {
          old_ty = old_provided.Provide.root_ty;
          new_ty = new_provided.Provide.root_ty;
        } );
    ]
  in
  let* e', ot, nt = rewrite ~new_classes ~old_classes env e in
  (* restore the program's original type (Remark 1: same τ) *)
  let* f = coerce ~new_classes ~old_classes nt ot in
  Ok (normalize_fresh (f e'))
