(** Idiomatic naming of provided types and members (Section 6.3).

    "Class members are renamed to follow PascalCase naming convention;
    when a collision occurs, a number is appended to the end as in
    PascalCase2. The provided implementation performs the lookup using the
    original name." Class names are derived from record names (XML
    elements) or from the parent record field (footnote 8: in
    [{"person": {"name": "Tomas"}}] the nested record is named [Person]).
*)

val pascal_case : string -> string
(** Split on non-alphanumeric separators and lower-to-upper camel
    boundaries, capitalize each word and concatenate: ["temp_min"] becomes
    ["TempMin"], ["user-id"] becomes ["UserId"], ["firstName"] becomes
    ["FirstName"]. A name starting with a digit is prefixed with ["N"]
    (["2lines"] becomes ["N2lines"]); an empty or fully-symbolic name
    becomes ["Value"]. *)

val singularize : string -> string
(** A light-weight English singularizer used to name the element type of a
    collection after the field holding it: ["people"] becomes ["person"],
    ["entries"] becomes ["entry"], ["items"] becomes ["item"]. Names
    without a recognized plural form are returned unchanged. *)

val pluralize : string -> string
(** Inverse of {!singularize} for naming list-valued members: ["item"]
    becomes ["items"], ["entry"] becomes ["entries"]. *)

type pool
(** A mutable pool of used names, for collision-free provided names. *)

val create_pool : unit -> pool

val fresh : pool -> string -> string
(** [fresh pool name] returns [name] if unused, otherwise [name2], [name3]
    ... (Section 6.3's PascalCase2 rule), and marks the result used. *)
