open Fsdata_foo.Syntax
module Shape = Fsdata_core.Shape
module Mult = Fsdata_core.Multiplicity
module Tag = Fsdata_core.Tag
module Infer = Fsdata_core.Infer
module Dv = Fsdata_data.Data_value

type format = [ `Json | `Xml | `Csv ]

type t = {
  root_ty : ty;
  conv : expr;
  classes : class_env;
  shape : Shape.t;
  format : format;
}

(* Type of a provided member given the entry's multiplicity. *)
let mult_ty mult ty =
  match mult with
  | Mult.Single -> ty
  | Mult.Optional_single -> TOption ty
  | Mult.Multiple -> TList ty

let is_anonymous_record_name n =
  String.equal n Dv.json_record_name || String.equal n Dv.csv_record_name

(* An XML element that carries nothing but a primitive body is provided as
   the primitive itself (Section 6.3: <item>Hello!</item> gives
   Root.Item : string, not a one-member class). *)
let xml_collapsible (r : Shape.record) =
  match r.fields with
  | [ (f, (Shape.Primitive _ | Shape.Nullable (Shape.Primitive _))) ]
    when String.equal f Dv.body_field ->
      Some (List.assoc f r.fields)
  | _ -> None

(* Observability (docs/OBSERVABILITY.md): one [provide] span and one
   [provide.runs] bump per shape→class-hierarchy translation;
   [provide.classes] accumulates how many classes those runs emitted.
   Global XML provision wraps its whole element-table walk instead,
   since it builds classes outside {!provide}. *)
let m_runs = Fsdata_obs.Metrics.counter "provide.runs"
let m_classes = Fsdata_obs.Metrics.counter "provide.classes"

let provide ?(format : format = `Json) ?(root_name = "Root") ?pool shape =
  Fsdata_obs.Trace.with_span "provide" @@ fun () ->
  Fsdata_obs.Metrics.incr m_runs;
  let pool = match pool with Some p -> p | None -> Naming.create_pool () in
  let classes = ref [] in
  let add_class c = classes := c :: !classes in
  let fresh_class hint = Naming.fresh pool (Naming.pascal_case hint) in
  let elem_hint ~root hint =
    let sing = Naming.singularize hint in
    if not (String.equal sing hint) then sing
    else if root then (match format with `Csv -> "Row" | _ -> "Entity")
    else "Item"
  in

  let rec go ~hint ~root (s : Shape.t) : ty * expr =
    match s with
    | Primitive Shape.Int ->
        (TInt, lam "x" TData (EOp (ConvPrim (s, EVar "x"))))
    | Primitive Shape.String ->
        (TString, lam "x" TData (EOp (ConvPrim (s, EVar "x"))))
    | Primitive Shape.Bool ->
        (* convBool rather than the paper's convPrim(bool): with the
           Section 6.2 bit shape, bit ⊑ bool lets 0/1 data reach bool
           members, and the conversion must accept it (F# Data's
           AsBoolean does). *)
        (TBool, lam "x" TData (EOp (ConvBool (EVar "x"))))
    | Primitive Shape.Float ->
        (TFloat, lam "x" TData (EOp (ConvFloat (s, EVar "x"))))
    | Primitive (Shape.Bit0 | Shape.Bit1) ->
        (* a lone 0 (or 1) reads as the integer it is (Root.Id : int) *)
        (TInt, lam "x" TData (EOp (ConvPrim (Primitive Shape.Int, EVar "x"))))
    | Primitive Shape.Bit -> (TBool, lam "x" TData (EOp (ConvBool (EVar "x"))))
    | Primitive Shape.Date -> (TDate, lam "x" TData (EOp (ConvDate (EVar "x"))))
    | Bottom | Null ->
        (* ⟦⊥⟧ = ⟦null⟧ = an opaque class holding the raw value. *)
        let name = fresh_class hint in
        add_class { class_name = name; ctor_params = [ ("v", TData) ]; members = [] };
        (TClass name, lam "x" TData (ENew (name, [ EVar "x" ])))
    | Nullable p ->
        let ty, conv = go ~hint ~root:false p in
        (TOption ty, lam "x" TData (EOp (ConvNull (EVar "x", conv))))
    | Record r -> (
        match if format = `Xml && not root then xml_collapsible r else None with
        | Some body_shape ->
            let ty, conv = go ~hint ~root:false body_shape in
            ( ty,
              lam "x" TData
                (EOp (ConvField (r.name, Dv.body_field, EVar "x", conv))) )
        | None -> provide_record ~hint r)
    | Collection entries -> provide_collection ~hint ~root entries
    | Top labels -> provide_top ~hint labels

  and provide_record ~hint (r : Shape.record) =
    let class_hint =
      if format = `Xml || not (is_anonymous_record_name r.name) then r.name
      else hint
    in
    let name = fresh_class class_hint in
    let member_pool = Naming.create_pool () in
    let members =
      List.map
        (fun (field, field_shape) ->
          match
            if format = `Xml && String.equal field Dv.body_field then
              xml_body_member ~parent:r ~member_pool field_shape
            else None
          with
          | Some m -> m
          | None ->
              let provided = Naming.fresh member_pool (Naming.pascal_case field) in
              let ty, conv = go ~hint:field ~root:false field_shape in
              {
                member_name = provided;
                member_ty = ty;
                member_body = EOp (ConvField (r.name, field, EVar "x1", conv));
              })
        r.fields
    in
    add_class { class_name = name; ctor_params = [ ("x1", TData) ]; members };
    (TClass name, lam "x" TData (ENew (name, [ EVar "x" ])))

  (* Section 6.2/6.3: the member generated for an XML element body. *)
  and xml_body_member ~parent ~member_pool (body : Shape.t) =
    match body with
    | Collection [ entry ] when entry.shape <> Shape.Null ->
        let base_name =
          match entry.shape with
          | Shape.Record er ->
              (* a repeated element member pluralizes: <item>s give Items *)
              let n = Naming.pascal_case er.name in
              if entry.mult = Mult.Multiple then Naming.pluralize n else n
          | Shape.Top _ ->
              (* mixed elements: named after the parent (root.Doc, §2.2) *)
              Naming.pascal_case parent.Shape.name
          | other -> Tag.to_member_name (Shape.tagof other)
        in
        let provided = Naming.fresh member_pool base_name in
        let ty, conv = go ~hint:base_name ~root:false entry.shape in
        Some
          {
            member_name = provided;
            member_ty = mult_ty entry.mult ty;
            member_body =
              EOp
                (ConvField
                   ( parent.Shape.name,
                     Dv.body_field,
                     EVar "x1",
                     lam "b" TData
                       (EOp (ConvSelect (entry.shape, entry.mult, EVar "b", conv)))
                   ));
          }
    | _ -> None

  and provide_collection ~hint ~root entries =
    let non_null =
      List.filter (fun (e : Shape.entry) -> e.shape <> Shape.Null) entries
    in
    let has_null =
      List.exists (fun (e : Shape.entry) -> e.shape = Shape.Null) entries
    in
    match non_null with
    | [] ->
        (* ⟦[⊥]⟧ (or a collection of nulls): a list of the opaque class. *)
        let ty, conv = go ~hint:(elem_hint ~root hint) ~root:false Shape.Bottom in
        (TList ty, lam "x" TData (EOp (ConvElements (EVar "x", conv))))
    | [ f ] ->
        (* Homogeneous: ⟦[σ]⟧ = list ⟦σ⟧ via convElements; null elements in
           the samples make the element conversion optional — explicitly
           via convNull, because for collection- and top-shaped elements
           ⌈σ⌉ = σ and the nullability would otherwise be lost. *)
        let hint = elem_hint ~root hint in
        if has_null then begin
          match Shape.nullable f.shape with
          | Shape.Nullable _ as elem ->
              let ty, conv = go ~hint ~root:false elem in
              (TList ty, lam "x" TData (EOp (ConvElements (EVar "x", conv))))
          | _ ->
              let ty, conv = go ~hint ~root:false f.shape in
              ( TList (TOption ty),
                lam "x" TData
                  (EOp
                     (ConvElements
                        ( EVar "x",
                          lam "y" TData (EOp (ConvNull (EVar "y", conv))) ))) )
        end
        else
          let ty, conv = go ~hint ~root:false f.shape in
          (TList ty, lam "x" TData (EOp (ConvElements (EVar "x", conv))))
    | consumers ->
        (* Heterogeneous (Section 6.4): a class with a member per entry,
           named by the entry's tag, selecting matching elements with a
           runtime shape test. *)
        let name = fresh_class hint in
        let member_pool = Naming.create_pool () in
        let members =
          List.map
            (fun (e : Shape.entry) ->
              let base = Naming.pascal_case (Tag.to_member_name (Shape.tagof e.shape)) in
              let provided = Naming.fresh member_pool base in
              let ty, conv = go ~hint:provided ~root:false e.shape in
              {
                member_name = provided;
                member_ty = mult_ty e.mult ty;
                member_body =
                  EOp (ConvSelect (e.shape, e.mult, EVar "x1", conv));
              })
            consumers
        in
        add_class { class_name = name; ctor_params = [ ("x1", TData) ]; members };
        (TClass name, lam "x" TData (ENew (name, [ EVar "x" ])))

  and provide_top ~hint labels =
    let class_hint = match format with `Xml -> "Element" | _ -> hint in
    let name = fresh_class class_hint in
    let member_pool = Naming.create_pool () in
    let members =
      List.map
        (fun label ->
          let base = Naming.pascal_case (Tag.to_member_name (Shape.tagof label)) in
          let provided = Naming.fresh member_pool base in
          let ty, conv = go ~hint:provided ~root:false label in
          {
            member_name = provided;
            member_ty = TOption ty;
            member_body =
              EIf
                ( EOp (HasShape (label, EVar "x1")),
                  ESome (EApp (conv, EVar "x1")),
                  ENone ty );
          })
        labels
    in
    add_class { class_name = name; ctor_params = [ ("x1", TData) ]; members };
    (TClass name, lam "x" TData (ENew (name, [ EVar "x" ])))
  in

  let root_ty, conv = go ~hint:root_name ~root:true shape in
  Fsdata_obs.Metrics.add m_classes (List.length !classes);
  { root_ty; conv; classes = List.rev !classes; shape; format }

let provide_json ?root_name src =
  match Infer.of_json ~mode:`Practical src with
  | Error e -> Error e
  | Ok shape -> Ok (provide ~format:`Json ?root_name shape)

let provide_xml ?root_name src =
  match Infer.of_xml src with
  | Error e -> Error e
  | Ok shape -> Ok (provide ~format:`Xml ?root_name shape)

let provide_xml_global sources =
  match Fsdata_core.Xml_global.of_strings sources with
  | Error e -> Error e
  | Ok global ->
      Fsdata_obs.Trace.with_span "provide.xml_global" @@ fun () ->
      Fsdata_obs.Metrics.incr m_runs;
      let module G = Fsdata_core.Xml_global in
      let pool = Naming.create_pool () in
      (* one class per element name; fix the name map first so recursive
         references resolve *)
      let class_names =
        List.map
          (fun (e : G.element_signature) ->
            (e.G.element_name, Naming.fresh pool (Naming.pascal_case e.G.element_name)))
          global.G.elements
      in
      let class_of name = List.assoc name class_names in
      let classes = ref [] in
      (* attribute/text shapes (primitives, nullables, possibly labelled
         tops or null) reuse the local provider, sharing this pool so
         auxiliary class names cannot collide with element classes *)
      let prim_conv shape =
        let p = provide ~format:`Xml ~pool shape in
        classes := List.rev_append p.classes !classes;
        (p.root_ty, p.conv)
      in
      List.iter
        (fun (e : G.element_signature) ->
          let member_pool = Naming.create_pool () in
          let attr_members =
            List.map
              (fun (attr, shape) ->
                let provided = Naming.fresh member_pool (Naming.pascal_case attr) in
                let ty, conv = prim_conv shape in
                {
                  member_name = provided;
                  member_ty = ty;
                  member_body =
                    EOp (ConvField (e.G.element_name, attr, EVar "x1", conv));
                })
              e.G.attributes
          in
          let body_members =
            match e.G.body with
            | G.Body_none -> []
            | G.Body_primitive shape ->
                let provided = Naming.fresh member_pool "Value" in
                let ty, conv = prim_conv shape in
                [
                  {
                    member_name = provided;
                    member_ty = ty;
                    member_body =
                      EOp
                        (ConvField (e.G.element_name, Dv.body_field, EVar "x1", conv));
                  };
                ]
            | G.Body_children children ->
                List.map
                  (fun (child, mult) ->
                    let base = Naming.pascal_case child in
                    let base =
                      if mult = Mult.Multiple then Naming.pluralize base else base
                    in
                    let provided = Naming.fresh member_pool base in
                    let child_class = class_of child in
                    (* select child elements by their record name *)
                    let select_shape = Shape.record child [] in
                    let select =
                      EOp
                        (ConvSelect
                           ( select_shape,
                             mult,
                             EVar "b",
                             lam "d" TData (ENew (child_class, [ EVar "d" ])) ))
                    in
                    (* Some occurrences of this element may carry text-only
                       or empty content instead of child elements (mixed
                       occurrences merge with element content winning, so
                       multiplicities are already optional there): guard
                       the selection with a collection test and answer
                       "no children" for non-collection bodies. *)
                    let body_expr =
                      match mult with
                      | Mult.Single -> select
                      | Mult.Optional_single ->
                          EIf
                            ( EOp (HasShape (Shape.collection Shape.any, EVar "b")),
                              select,
                              ENone (TClass child_class) )
                      | Mult.Multiple ->
                          EIf
                            ( EOp (HasShape (Shape.collection Shape.any, EVar "b")),
                              select,
                              ENil (TClass child_class) )
                    in
                    {
                      member_name = provided;
                      member_ty = mult_ty mult (TClass child_class);
                      member_body =
                        EOp
                          (ConvField
                             ( e.G.element_name,
                               Dv.body_field,
                               EVar "x1",
                               lam "b" TData body_expr ));
                    })
                  children
          in
          classes :=
            {
              class_name = class_of e.G.element_name;
              ctor_params = [ ("x1", TData) ];
              members = attr_members @ body_members;
            }
            :: !classes)
        global.G.elements;
      let root_class = class_of global.G.root in
      Fsdata_obs.Metrics.add m_classes (List.length !classes);
      Ok
        {
          root_ty = TClass root_class;
          conv = lam "x" TData (ENew (root_class, [ EVar "x" ]));
          classes = List.rev !classes;
          shape = Shape.record global.G.root [];
          format = `Xml;
        }

let provide_html src =
  match Fsdata_data.Html.tables_of_string src with
  | tables ->
      let pool = Naming.create_pool () in
      Ok
        (List.mapi
           (fun i (t : Fsdata_data.Html.table) ->
             let base =
               match (t.Fsdata_data.Html.id, t.Fsdata_data.Html.caption) with
               | Some id, _ -> id
               | None, Some c when String.trim c <> "" -> c
               | _ -> Printf.sprintf "Table%d" (i + 1)
             in
             let name = Naming.fresh pool (Naming.pascal_case base) in
             let data =
               Fsdata_data.Csv.to_data ~convert_primitives:false
                 t.Fsdata_data.Html.table
             in
             let shape = Infer.shape_of_value ~mode:`Practical data in
             (name, provide ~format:`Csv ~root_name:name shape, t.Fsdata_data.Html.table))
           tables)
  | exception e -> Error (Printexc.to_string e)

let provide_csv ?separator ?has_headers ?schema src =
  match Fsdata_core.Csv_schema.infer_csv ?separator ?has_headers ?schema src with
  | Error e -> Error e
  | Ok shape -> Ok (provide ~format:`Csv shape)

let apply t d = EApp (t.conv, EData d)
