let is_alnum c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')

let is_upper c = c >= 'A' && c <= 'Z'
let is_lower c = c >= 'a' && c <= 'z'
let is_digit c = c >= '0' && c <= '9'

(* Split a raw name into words: separators are non-alphanumeric characters;
   camel humps (lower-to-upper transitions, and the last upper of an
   acronym followed by a lower, as in "XMLFile" -> XML, File) also split. *)
let words s =
  let n = String.length s in
  let words = ref [] in
  let buf = Buffer.create 8 in
  let flush () =
    if Buffer.length buf > 0 then begin
      words := Buffer.contents buf :: !words;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let c = s.[i] in
    if not (is_alnum c) then flush ()
    else begin
      let prev = if i > 0 then Some s.[i - 1] else None in
      let next = if i < n - 1 then Some s.[i + 1] else None in
      (match prev with
      | Some p when is_alnum p ->
          if is_upper c && (is_lower p || is_digit p) then flush ()
          else if
            is_upper c && is_upper p
            && match next with Some nx -> is_lower nx | None -> false
          then flush ()
      | _ -> ());
      Buffer.add_char buf c
    end
  done;
  flush ();
  List.rev !words

let capitalize w =
  if w = "" then w
  else
    String.mapi
      (fun i c ->
        if i = 0 then Char.uppercase_ascii c
        else if String.for_all (fun c -> not (is_lower c)) w then
          (* all-caps acronym: keep only the initial capital *)
          Char.lowercase_ascii c
        else c)
      w

let pascal_case s =
  let name = String.concat "" (List.map capitalize (words s)) in
  if name = "" then "Value"
  else if is_digit name.[0] then "N" ^ name
  else name

let ends_with suffix s =
  let ls = String.length suffix and ln = String.length s in
  ln >= ls && String.sub s (ln - ls) ls = suffix

let drop n s = String.sub s 0 (String.length s - n)

let singularize s =
  let low = String.lowercase_ascii s in
  if low = "people" then String.sub s 0 1 |> fun c -> (if c = "P" then "Person" else "person")
  else if ends_with "ies" low && String.length s > 3 then drop 3 s ^ "y"
  else if ends_with "sses" low || ends_with "shes" low || ends_with "ches" low
          || ends_with "xes" low || ends_with "zes" low
  then drop 2 s
  else if ends_with "ss" low then s
  else if ends_with "s" low && String.length s > 1 then drop 1 s
  else s

let pluralize s =
  let low = String.lowercase_ascii s in
  if low = "person" then (if s.[0] = 'P' then "People" else "people")
  else if ends_with "y" low && String.length s > 1
          && not (List.mem low.[String.length low - 2] [ 'a'; 'e'; 'i'; 'o'; 'u' ])
  then drop 1 s ^ "ies"
  else if ends_with "s" low || ends_with "sh" low || ends_with "ch" low
          || ends_with "x" low || ends_with "z" low
  then s ^ "es"
  else s ^ "s"

type pool = (string, unit) Hashtbl.t

let create_pool () : pool = Hashtbl.create 16

let fresh pool name =
  if not (Hashtbl.mem pool name) then begin
    Hashtbl.add pool name ();
    name
  end
  else begin
    let rec go i =
      let candidate = Printf.sprintf "%s%d" name i in
      if Hashtbl.mem pool candidate then go (i + 1)
      else begin
        Hashtbl.add pool candidate ();
        candidate
      end
    in
    go 2
  end
