(** Printing provided types in the paper's F# signature style.

    The paper displays provided types as

    {v
      type Entity =
        member Name : string
        member Age : option float
      type People =
        member GetSample : unit -> Entity[]
        member Parse : string -> Entity[]
    v}

    {!pp} renders the classes of a {!Provide.t} in this style, and appends
    the root wrapper type with its [GetSample]/[Parse]/[Load] entry points
    (Section 2.1). Foo types print in F# notation: [list t] as [t\[\]],
    [option t] as [option t]. *)

val pp_ty : Format.formatter -> Fsdata_foo.Syntax.ty -> unit

val pp : ?root_name:string -> Format.formatter -> Provide.t -> unit
(** [root_name] (default ["Document"]) names the wrapper type carrying the
    [GetSample]/[Parse]/[Load] members. *)

val to_string : ?root_name:string -> Provide.t -> string
