(** The type provider mapping [⟦σ⟧ = (τ, e, L)] (Figure 8).

    Given an inferred shape, the provider produces an F# (here: Foo) type
    [τ], a conversion expression [e] of type [Data -> τ], and the class
    definitions [L] used by [e] — exactly the triple of Section 4.2. The
    generated classes are well-typed by construction (and
    {!Fsdata_foo.Typecheck.check_classes} verifies this in the tests).

    Generation rules, by shape:

    - primitives insert the matching conversion ([convPrim], [convFloat];
      the Section 6.2 extensions [bit] and [date] use [convBool] and
      [convDate], so a CSV column holding only 0/1 is provided as [bool],
      "inferring Autofilled as Boolean");
    - a record becomes a class with one member per field, each calling
      [convField] with the {e original} field name but exposed under its
      normalized PascalCase name (Section 6.3);
    - a homogeneous collection becomes [list τ] via [convElements]; when
      the samples also contained null elements the element conversion is
      wrapped in [convNull], giving [list (option τ)];
    - a heterogeneous collection (Section 6.4, several entry tags) becomes
      a class with one member per non-null entry, named after the entry's
      tag (the World Bank sample of Section 2.3 provides [Record] and
      [Array]); the member selects matching elements with a runtime shape
      test and is typed by the entry's multiplicity — [τ], [option τ] or
      [list τ];
    - a labelled top becomes a class with one [option τ] member per label,
      guarded by [hasShape] (Example 2);
    - [nullable σ] becomes [option τ] via [convNull]; [⊥] and [null]
      become an opaque class with no members.

    With [~format:`Xml] the Section 6.2/6.3 XML conventions additionally
    apply when providing records (XML elements):

    - an element whose only content is a primitive body collapses to that
      primitive ([<item>Hello!</item>] is provided as [string]);
    - a body holding a single element kind becomes a member named after
      the element (pluralized when repeated), typed directly / as option /
      as list according to its multiplicity ([Root.Item : string]);
    - a body holding several element kinds becomes a member named after
      the parent element holding the list of the labelled-top element
      class (Section 2.2's [root.Doc : Element\[\]]);
    - a residual primitive body member is named [Value]. *)

type format = [ `Json | `Xml | `Csv ]

type t = {
  root_ty : Fsdata_foo.Syntax.ty;
  conv : Fsdata_foo.Syntax.expr;  (** closed, of type [Data -> root_ty] *)
  classes : Fsdata_foo.Syntax.class_env;
  shape : Fsdata_core.Shape.t;  (** the shape the provider was given *)
  format : format;
}

val provide :
  ?format:format -> ?root_name:string -> ?pool:Naming.pool ->
  Fsdata_core.Shape.t -> t
(** [provide shape] generates the provided type. [root_name] (default
    ["Root"], or ["Entity"] for the element class of a root collection)
    seeds class naming; XML records are named after their element, JSON
    records after the field that holds them (footnote 8), with PascalCase
    normalization and collision suffixes throughout. *)

val provide_json : ?root_name:string -> string -> (t, string) result
(** Parse one or more JSON samples, infer, and provide. *)

val provide_xml : ?root_name:string -> string -> (t, string) result

val provide_xml_global : string list -> (t, string) result
(** Global XML inference (Section 6.2): unify all elements with the same
    name across the samples and generate one nominal class per element
    name. Child elements are referenced by class, so recursive document
    shapes (an element containing itself, as in XHTML) provide fine —
    something local inference cannot express. The root type is the class
    of the samples' root element. *)

val provide_html :
  string -> ((string * t * Fsdata_data.Csv.table) list, string) result
(** The HTML provider of the paper's footnote 10: extract every [<table>]
    from the document and provide one type per table through the CSV
    machinery of Section 6.2 (so 0/1 columns become bool, [#N/A] becomes
    optional, dates are recognized). Each result carries the provided
    name — the table's [id], or its caption, or ["TableN"] — the provided
    type, and the extracted raw table (pass
    [Fsdata_data.Csv.to_data table] to {!Fsdata_runtime.Typed.load}). *)

val provide_csv :
  ?separator:char ->
  ?has_headers:bool ->
  ?schema:string ->
  string ->
  (t, string) result
(** [schema] is a column-override string like ["Temp=float, Flag=bool?"]
    (see {!Fsdata_core.Csv_schema}). *)

val apply : t -> Fsdata_data.Data_value.t -> Fsdata_foo.Syntax.expr
(** [apply p d] is the application [p.conv d], ready for evaluation. *)
