open Fsdata_foo.Syntax

let rec pp_ty ppf = function
  | TInt -> Fmt.string ppf "int"
  | TFloat -> Fmt.string ppf "float"
  | TBool -> Fmt.string ppf "bool"
  | TString -> Fmt.string ppf "string"
  | TDate -> Fmt.string ppf "DateTime"
  | TData -> Fmt.string ppf "Data"
  | TClass c -> Fmt.string ppf c
  | TList t -> Fmt.pf ppf "%a[]" pp_ty_atom t
  | TOption t -> Fmt.pf ppf "option %a" pp_ty_atom t
  | TArrow (a, b) -> Fmt.pf ppf "%a -> %a" pp_ty_atom a pp_ty b

and pp_ty_atom ppf t =
  match t with
  | TArrow _ | TOption _ -> Fmt.pf ppf "(%a)" pp_ty t
  | _ -> pp_ty ppf t

let pp_class ppf (c : class_def) =
  if c.members = [] then Fmt.pf ppf "@[<v 2>type %s (* opaque *)@]" c.class_name
  else
    Fmt.pf ppf "@[<v 2>type %s =@ %a@]" c.class_name
      Fmt.(
        list ~sep:(any "@ ") (fun ppf (m : member_def) ->
            Fmt.pf ppf "member %s : %a" m.member_name pp_ty m.member_ty))
      c.members

let pp ?(root_name = "Document") ppf (p : Provide.t) =
  let blocks =
    List.map (fun c -> Fmt.str "@[<v>%a@]" pp_class c) p.classes
    @ [
        Fmt.str
          "@[<v 2>type %s =@ member GetSample : unit -> %a@ member Parse : \
           string -> %a@ member Load : string -> %a@]"
          root_name pp_ty p.root_ty pp_ty p.root_ty pp_ty p.root_ty;
      ]
  in
  Fmt.string ppf (String.concat "\n\n" blocks)

let to_string ?root_name p = Fmt.str "%a" (pp ?root_name) p
