(** Automatic program migration across sample evolution — Remark 1 of the
    paper, implemented.

    Section 6.5 proves that when a new sample is added, any program [e]
    over the old provided type can be rewritten to a program [e'] over the
    new provided type with the same behaviour on old inputs, using three
    local transformations:

    + [C\[e\]] to [C\[match e with Some(v) → v | None → exn]] — a member
      that became optional;
    + [C\[e\]] to [C\[e.M\]] — a shape that became part of a labelled top
      (select its label member, then rule 1 for the option);
    + [C\[e\]] to [C\[int(e)\]] — an [int] that became [float].

    The paper proves such an [e'] {e exists}; this module {e computes} it,
    by type-directed rewriting: the program is traversed with each
    variable carrying its type in both the old and the new provided
    classes, member accesses are re-routed through labelled-top members
    when needed, and coercions are inserted exactly where the two typings
    diverge.

    The property test (test/test_migrate.ml) is Remark 1's statement run
    as a theorem: for random samples, a random extra sample, and random
    well-typed user programs over the old type, the migrated program
    type-checks against the new classes and computes the same value on
    the old inputs. *)

type error =
  | Unsupported of string
      (** the program uses a construct outside the migratable fragment, or
          the types evolved in a way the three rules cannot bridge (the
          paper's rules are complete for provider-generated evolutions;
          this is defensive) *)

val pp_error : Format.formatter -> error -> unit
(** Human-readable rendering of {!type-error}, as printed by
    [fsdata migrate]. *)

val migrate :
  old_provided:Provide.t ->
  new_provided:Provide.t ->
  Fsdata_foo.Syntax.expr ->
  (Fsdata_foo.Syntax.expr, error) result
(** [migrate ~old_provided ~new_provided e] rewrites the user program [e]
    — a well-typed expression over [old_provided] with the free variable
    [y] standing for the provided root value — into a program over
    [new_provided] with the same free variable convention.

    The program must be user code in the sense of Theorem 3: no dynamic
    data operations except the [int(e)] coercion, no [Data] literals.

    The output is deterministic: generated binders ([mig%N]) are
    renumbered in traversal order, so the rewritten program depends
    only on the input — migrating [v1 -> v3] directly produces the
    same bytes as composing [v1 -> v2; v2 -> v3], and re-computed
    service responses are reproducible. *)

val coerce :
  new_classes:Fsdata_foo.Syntax.class_env ->
  old_classes:Fsdata_foo.Syntax.class_env ->
  Fsdata_foo.Syntax.ty ->
  Fsdata_foo.Syntax.ty ->
  (Fsdata_foo.Syntax.expr -> Fsdata_foo.Syntax.expr, error) result
(** [coerce ~new_classes ~old_classes new_ty old_ty] builds the adapter
    taking a value of the new type to the old type's interface, when the
    three rules suffice; used by {!migrate} and exposed for testing. *)
