module Dv = Fsdata_data.Data_value

type conversion_error = {
  op : string;
  path : string list;
  expected : string;
  actual : string;
}

exception Conversion_error of conversion_error

(* Offending values can be arbitrarily large documents; diagnostics only
   need enough of them to be recognizable. *)
let summarize ?(limit = 120) s =
  if String.length s <= limit then s else String.sub s 0 limit ^ "..."

let summarize_value d = summarize (Fmt.str "%a" Dv.pp d)

let error_message e =
  let at =
    match e.path with [] -> "" | segs -> " at " ^ String.concat "." segs
  in
  if e.expected = "" then Printf.sprintf "%s%s: %s" e.op at e.actual
  else
    Printf.sprintf "%s%s: expected %s but found %s" e.op at e.expected e.actual

let conversion_error ?(path = []) ?(expected = "") ~op actual =
  { op; path; expected; actual }

let conversion_failure ?path ?expected ~op actual =
  raise (Conversion_error (conversion_error ?path ?expected ~op actual))

let with_path segment f =
  try f ()
  with Conversion_error e ->
    raise (Conversion_error { e with path = segment :: e.path })

let fail ~expected op d =
  raise (Conversion_error (conversion_error ~expected ~op (summarize_value d)))

let conv_int = function
  | Dv.Int i -> i
  | d -> fail ~expected:"int" "convPrim(int)" d

let conv_string = function
  | Dv.String s -> s
  | d -> fail ~expected:"string" "convPrim(string)" d

let conv_bool = function
  | Dv.Bool b -> b
  | d -> fail ~expected:"bool" "convPrim(bool)" d

let conv_float = function
  | Dv.Int i -> float_of_int i
  | Dv.Float f -> f
  | d -> fail ~expected:"a number" "convFloat" d

let conv_bit_bool = function
  | Dv.Bool b -> b
  | Dv.Int 0 -> false
  | Dv.Int 1 -> true
  | d -> fail ~expected:"a bool or the bits 0/1" "convBool" d

let conv_date = function
  | Dv.String s as d -> (
      match Fsdata_data.Date.of_string s with
      | Some date -> date
      | None -> fail ~expected:"a date string" "convDate" d)
  | d -> fail ~expected:"a date string" "convDate" d

let conv_field ~record ~field = function
  | Dv.Record (name, fields) when String.equal name record -> (
      match List.assoc_opt field fields with Some d -> d | None -> Dv.Null)
  | d ->
      raise
        (Conversion_error
           (conversion_error ~path:[ field ]
              ~expected:(Printf.sprintf "a record named %s" record)
              ~op:(Printf.sprintf "convField(%s, %s)" record field)
              (summarize_value d)))

let conv_null k = function Dv.Null -> None | d -> Some (k d)

let conv_elements k = function
  | Dv.Null -> []
  | Dv.List ds -> List.map k ds
  | d -> fail ~expected:"a collection" "convElements" d

let has_shape = Fsdata_core.Shape_check.has_shape

let matches shape = function
  | Dv.Null -> []
  | Dv.List ds -> List.filter (has_shape shape) ds
  | d -> fail ~expected:"a collection" "convSelect" d

let select_single shape k d =
  match matches shape d with
  | m :: _ -> k m
  | [] -> fail ~expected:"an element matching the shape" "convSelect(1)" d

let select_optional shape k d =
  match matches shape d with m :: _ -> Some (k m) | [] -> None

let select_multiple shape k d = List.map k (matches shape d)

(* ----- Lenient variants ----- *)

let try_conv k d = match k d with v -> Some v | exception Conversion_error _ -> None

let conv_int_opt d = try_conv conv_int d
let conv_string_opt d = try_conv conv_string d
let conv_bool_opt d = try_conv conv_bool d
let conv_float_opt d = try_conv conv_float d
let conv_bit_bool_opt d = try_conv conv_bit_bool d
let conv_date_opt d = try_conv conv_date d
let conv_field_opt ~record ~field d = try_conv (conv_field ~record ~field) d
let conv_elements_opt k d = try_conv (conv_elements k) d
let select_single_opt shape k d = try_conv (select_single shape k) d
