module Dv = Fsdata_data.Data_value

exception Conversion_error of string

let fail op d =
  raise
    (Conversion_error
       (Fmt.str "%s: value %a does not have the expected shape" op Dv.pp d))

let conv_int = function Dv.Int i -> i | d -> fail "convPrim(int)" d
let conv_string = function Dv.String s -> s | d -> fail "convPrim(string)" d
let conv_bool = function Dv.Bool b -> b | d -> fail "convPrim(bool)" d

let conv_float = function
  | Dv.Int i -> float_of_int i
  | Dv.Float f -> f
  | d -> fail "convFloat" d

let conv_bit_bool = function
  | Dv.Bool b -> b
  | Dv.Int 0 -> false
  | Dv.Int 1 -> true
  | d -> fail "convBool" d

let conv_date = function
  | Dv.String s as d -> (
      match Fsdata_data.Date.of_string s with
      | Some date -> date
      | None -> fail "convDate" d)
  | d -> fail "convDate" d

let conv_field ~record ~field = function
  | Dv.Record (name, fields) when String.equal name record -> (
      match List.assoc_opt field fields with Some d -> d | None -> Dv.Null)
  | d -> fail (Printf.sprintf "convField(%s, %s)" record field) d

let conv_null k = function Dv.Null -> None | d -> Some (k d)

let conv_elements k = function
  | Dv.Null -> []
  | Dv.List ds -> List.map k ds
  | d -> fail "convElements" d

let has_shape = Fsdata_core.Shape_check.has_shape

let matches shape = function
  | Dv.Null -> []
  | Dv.List ds -> List.filter (has_shape shape) ds
  | d -> fail "convSelect" d

let select_single shape k d =
  match matches shape d with
  | m :: _ -> k m
  | [] -> fail "convSelect(1)" d

let select_optional shape k d =
  match matches shape d with m :: _ -> Some (k m) | [] -> None

let select_multiple shape k d = List.map k (matches shape d)
