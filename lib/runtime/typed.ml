open Fsdata_foo.Syntax
module Eval = Fsdata_foo.Eval
module Dv = Fsdata_data.Data_value

type value = { classes : class_env; expr : expr (* a Foo value *) }

exception Runtime_exn

let run classes e =
  match Eval.eval classes e with
  | Eval.Value v -> { classes; expr = v }
  | Eval.Exn -> raise Runtime_exn
  | Eval.Stuck { reason; _ } ->
      Ops.conversion_failure ~op:"eval" (Ops.summarize reason)
  | Eval.Timeout ->
      Ops.conversion_failure ~op:"eval" "evaluation did not terminate"

let load (p : Fsdata_provider.Provide.t) d =
  run p.classes (EApp (p.conv, EData d))

let parse (p : Fsdata_provider.Provide.t) text =
  let data =
    match p.format with
    | `Json -> (
        match Fsdata_data.Json.parse_result text with
        | Ok d -> Fsdata_data.Primitive.normalize d
        | Error e ->
            Ops.conversion_failure ~expected:"well-formed JSON" ~op:"parse" e)
    | `Xml -> (
        match Fsdata_data.Xml.parse_result text with
        | Ok tree -> Fsdata_data.Xml.to_data ~convert_primitives:true tree
        | Error e ->
            Ops.conversion_failure ~expected:"well-formed XML" ~op:"parse" e)
    | `Csv -> (
        match Fsdata_data.Csv.parse_result text with
        | Ok table -> Fsdata_data.Csv.to_data ~convert_primitives:true table
        | Error e ->
            Ops.conversion_failure ~expected:"well-formed CSV" ~op:"parse" e)
  in
  load p data

let rec path v dotted =
  match String.index_opt dotted '.' with
  | None -> member v dotted
  | Some i ->
      path
        (member v (String.sub dotted 0 i))
        (String.sub dotted (i + 1) (String.length dotted - i - 1))

and member v name =
  match v.expr with
  | ENew _ ->
      (* attribute any deep conversion failure to the member being
         evaluated, so the error's access path names the chain *)
      Ops.with_path name (fun () -> run v.classes (EMember (v.expr, name)))
  | _ ->
      Ops.conversion_failure ~path:[ name ] ~expected:"a provided object"
        ~op:(Printf.sprintf "member %s" name)
        (Ops.summarize (Fmt.str "%a" pp_expr v.expr))

let wrong what v =
  Ops.conversion_failure ~expected:what ~op:"get"
    (Ops.summarize (Fmt.str "%a" pp_expr v.expr))

let get_int v = match v.expr with EData (Dv.Int i) -> i | _ -> wrong "an int" v

let get_float v =
  match v.expr with
  | EData (Dv.Float f) -> f
  | EData (Dv.Int i) -> float_of_int i
  | _ -> wrong "a float" v

let get_bool v =
  match v.expr with EData (Dv.Bool b) -> b | _ -> wrong "a bool" v

let get_string v =
  match v.expr with EData (Dv.String s) -> s | _ -> wrong "a string" v

let get_date v = match v.expr with EDate d -> d | _ -> wrong "a date" v

let get_option v =
  match v.expr with
  | ENone _ -> None
  | ESome e -> Some { v with expr = e }
  | _ -> wrong "an option" v

let get_list v =
  let rec go acc = function
    | ENil _ -> List.rev acc
    | ECons (x, rest) -> go ({ v with expr = x } :: acc) rest
    | _ -> wrong "a list" v
  in
  go [] v.expr

let to_expr v = v.expr

let underlying v =
  match v.expr with ENew (_, [ EData d ]) -> Some d | _ -> None

let pp ppf v = pp_expr ppf v.expr
