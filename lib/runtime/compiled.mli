(** Typed access over shape-compiled parse results.

    {!Fsdata_core.Shape_compile} decodes conforming documents straight
    into {!Fsdata_core.Shape_compile.tvalue} — primitives already in
    their target representation, records as key-slot arrays. This module
    is the accessor layer over that representation, the compiled
    counterpart of {!Typed} over generic data: member access on values
    of an unexpected kind raises {!Ops.Conversion_error}, exactly like
    the interpreted runtime.

    [Vany] nodes (top-shaped subtrees, unknown-tag collection elements,
    fallback documents) carry normalized generic data; accessors bridge
    to the {!Ops} conversions for them, so code written against this
    interface behaves identically on direct and fallback results. *)

type value = Fsdata_core.Shape_compile.tvalue

val get_int : value -> int
val get_float : value -> float
(** Accepts [Vint] too (the [convFloat] widening rule). *)

val get_bool : value -> bool
val get_string : value -> string
val get_date : value -> Fsdata_data.Date.t

val get_option : value -> value option
(** [None] on [Vnull] (and [Vany Null]), [Some v] otherwise. *)

val field : value -> string -> value
(** Record field by name.
    @raise Ops.Conversion_error when the value is not a record or the
    field is absent. *)

val elements : value -> value list
(** Collection elements; null reads as the empty collection, mirroring
    [convElements]. *)

val to_data : value -> Fsdata_data.Data_value.t
(** Re-export of {!Fsdata_core.Shape_compile.to_data}. *)
