open Fsdata_core.Shape_compile
module Dv = Fsdata_data.Data_value

type value = tvalue

let kind = function
  | Vnull -> "null"
  | Vbool _ -> "bool"
  | Vint _ -> "int"
  | Vfloat _ -> "float"
  | Vstring _ -> "string"
  | Vdate _ -> "date"
  | Vlist _ -> "collection"
  | Vrecord _ -> "record"
  | Vany d -> Ops.summarize_value d

let get_int = function
  | Vint i -> i
  | Vany d -> Ops.conv_int d
  | v -> Ops.conversion_failure ~expected:"int" ~op:"get_int" (kind v)

let get_float = function
  | Vfloat f -> f
  | Vint i -> float_of_int i
  | Vany d -> Ops.conv_float d
  | v -> Ops.conversion_failure ~expected:"float" ~op:"get_float" (kind v)

let get_bool = function
  | Vbool b -> b
  | Vany d -> Ops.conv_bool d
  | v -> Ops.conversion_failure ~expected:"bool" ~op:"get_bool" (kind v)

let get_string = function
  | Vstring s -> s
  | Vany d -> Ops.conv_string d
  | v -> Ops.conversion_failure ~expected:"string" ~op:"get_string" (kind v)

let get_date = function
  | Vdate d -> d
  | Vany d -> Ops.conv_date d
  | v -> Ops.conversion_failure ~expected:"date" ~op:"get_date" (kind v)

let get_option = function
  | Vnull | Vany Dv.Null -> None
  | v -> Some v

let field v name =
  match v with
  | Vrecord (record, fields) -> (
      match Array.find_opt (fun (k, _) -> String.equal k name) fields with
      | Some (_, v) -> v
      | None ->
          Ops.conversion_failure ~path:[ name ]
            ~expected:(Printf.sprintf "a field of %s" record)
            ~op:"field" "a missing field")
  | Vany d -> Vany (Ops.conv_field ~record:Dv.json_record_name ~field:name d)
  | v -> Ops.conversion_failure ~expected:"record" ~op:"field" (kind v)

let elements = function
  | Vlist items -> Array.to_list items
  | Vnull -> []
  | Vany d -> List.map (fun d -> Vany d) (Ops.conv_elements Fun.id d)
  | v -> Ops.conversion_failure ~expected:"collection" ~op:"elements" (kind v)

let to_data = to_data
