(** Typed access to structured data through a provided type — the
    developer-facing runtime that stands in for F# type providers in OCaml
    (see DESIGN.md: type providers are substituted by this dynamic typed
    runtime plus the {!Fsdata_codegen} static code generator).

    A {!value} pairs a Foo value with the provided classes, so that member
    access runs the provider-generated conversion code through the Foo
    interpreter. This keeps one single semantics for provided types — the
    formal one of Figures 6 and 8 — and makes the examples read like the
    paper's F#:

    {[
      let p = Provide.provide_json ~root_name:"W" weather_sample |> Result.get_ok in
      let w = Typed.parse p weather_sample in
      Typed.(get_float (member (member w "Main") "Temp"))
    ]}

    Access to data of an unexpected shape raises
    {!Fsdata_runtime.Ops.Conversion_error}, mirroring the exception the
    real F# Data library throws. *)

type value

exception Runtime_exn
(** The [exn] outcome of Remark 1, raised when evaluating user-injected
    [exn]-containing code. Provider-generated code never raises it. *)

val load : Fsdata_provider.Provide.t -> Fsdata_data.Data_value.t -> value
(** Convert a data value through the provider's conversion expression.
    The data should already be in runtime form (see {!parse}). *)

val parse : Fsdata_provider.Provide.t -> string -> value
(** The provided [Parse] member: parse the text in the provider's format
    (JSON / XML / CSV), convert literals to their runtime representation
    ({!Fsdata_data.Primitive.normalize} for JSON, primitive conversion for
    XML attributes and CSV cells), and {!load} the result.
    @raise Fsdata_runtime.Ops.Conversion_error on malformed input. *)

val path : value -> string -> value
(** [path v "Main.Temp"] follows a dot-separated chain of members —
    shorthand for nested {!member} calls. *)

val member : value -> string -> value
(** [member v "Name"] evaluates the provided member. Member names are the
    provided (PascalCase) names.
    @raise Fsdata_runtime.Ops.Conversion_error when the underlying data
    does not have the shape the member requires (a stuck state of the
    calculus), or when the member does not exist. *)

val get_int : value -> int
val get_float : value -> float
val get_bool : value -> bool
val get_string : value -> string
val get_date : value -> Fsdata_data.Date.t

val get_option : value -> value option
(** Unpack an option value ([None]/[Some]). *)

val get_list : value -> value list

val to_expr : value -> Fsdata_foo.Syntax.expr
(** The underlying Foo value (a value expression). *)

val underlying : value -> Fsdata_data.Data_value.t option
(** For opaque provided objects, the raw data value they wrap — the
    analogue of Section 6.3's [JsonValue]/[XElement] escape-hatch members.
    Returns the wrapped data for any provided object, [None] for
    non-objects. *)

val pp : Format.formatter -> value -> unit
