(** The F# Data runtime: the dynamic data operations of Figure 6 as plain
    OCaml functions.

    These are the operations the provided code is compiled against — both
    the OCaml modules emitted by {!Fsdata_codegen} and the
    {!Typed} accessor layer bottom out here. Where the Foo calculus gets
    stuck, these functions raise {!Conversion_error}, which is the
    behaviour the paper describes for the real library ("a member access
    throws an exception if data does not have the expected shape"). *)

exception Conversion_error of string
(** Raised when a value does not have the shape an operation requires. The
    message names the operation and describes the offending value. *)

val conv_int : Fsdata_data.Data_value.t -> int
(** [convPrim(int, d)]. *)

val conv_string : Fsdata_data.Data_value.t -> string
(** [convPrim(string, d)]. *)

val conv_bool : Fsdata_data.Data_value.t -> bool
(** [convPrim(bool, d)]. *)

val conv_float : Fsdata_data.Data_value.t -> float
(** [convFloat(float, d)]: accepts integers too (rule
    [convFloat(float, i) ⇝ f]). *)

val conv_bit_bool : Fsdata_data.Data_value.t -> bool
(** The bit-shape conversion: booleans pass through, 0 and 1 convert. *)

val conv_date : Fsdata_data.Data_value.t -> Fsdata_data.Date.t
(** The date conversion: strings in a recognized format parse. *)

val conv_field :
  record:string -> field:string -> Fsdata_data.Data_value.t -> Fsdata_data.Data_value.t
(** [convField(nu, nu', d, id)]: the raw field value, or [Null] when the
    field is missing; raises when [d] is not a record named [record]. *)

val conv_null :
  (Fsdata_data.Data_value.t -> 'a) -> Fsdata_data.Data_value.t -> 'a option
(** [convNull]: [None] on null, [Some (k d)] otherwise. *)

val conv_elements :
  (Fsdata_data.Data_value.t -> 'a) -> Fsdata_data.Data_value.t -> 'a list
(** [convElements]: maps [k] over a collection; null reads as the empty
    collection. *)

val has_shape : Fsdata_core.Shape.t -> Fsdata_data.Data_value.t -> bool
(** Re-export of {!Fsdata_core.Shape_check.has_shape}. *)

val select_single :
  Fsdata_core.Shape.t ->
  (Fsdata_data.Data_value.t -> 'a) ->
  Fsdata_data.Data_value.t ->
  'a
(** Heterogeneous-collection access with multiplicity 1: the first element
    matching the shape; raises when there is none. *)

val select_optional :
  Fsdata_core.Shape.t ->
  (Fsdata_data.Data_value.t -> 'a) ->
  Fsdata_data.Data_value.t ->
  'a option
(** Multiplicity 1?. *)

val select_multiple :
  Fsdata_core.Shape.t ->
  (Fsdata_data.Data_value.t -> 'a) ->
  Fsdata_data.Data_value.t ->
  'a list
(** Multiplicity *. *)
