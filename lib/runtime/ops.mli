(** The F# Data runtime: the dynamic data operations of Figure 6 as plain
    OCaml functions.

    These are the operations the provided code is compiled against — both
    the OCaml modules emitted by {!Fsdata_codegen} and the
    {!Typed} accessor layer bottom out here. Where the Foo calculus gets
    stuck, these functions raise {!Conversion_error}, which is the
    behaviour the paper describes for the real library ("a member access
    throws an exception if data does not have the expected shape"). *)

type conversion_error = {
  op : string;  (** the Figure 6 operation (or runtime step) that failed *)
  path : string list;
      (** access path from the root to the failing access, outermost
          first; [[]] when the operation ran outside any tracked path *)
  expected : string;  (** the shape the operation required; may be empty *)
  actual : string;  (** bounded summary of the offending value or fault *)
}

exception Conversion_error of conversion_error
(** Raised when a value does not have the shape an operation requires. *)

val error_message : conversion_error -> string
(** Human-readable rendering:
    ["op at a.b: expected int but found \"x\""]. *)

val conversion_error :
  ?path:string list -> ?expected:string -> op:string -> string -> conversion_error
(** [conversion_error ~op actual] builds an error value; [path] defaults
    to empty and [expected] to unknown. *)

val conversion_failure :
  ?path:string list -> ?expected:string -> op:string -> string -> 'a
(** Build and raise in one step. *)

val with_path : string -> (unit -> 'a) -> 'a
(** [with_path segment f] runs [f], prepending [segment] to the access
    path of any {!Conversion_error} escaping it — how accessor layers
    attribute a deep conversion failure to the member chain that led
    there. *)

val summarize : ?limit:int -> string -> string
(** Truncate a rendering to [limit] bytes (default 120) with an
    ellipsis. *)

val summarize_value : Fsdata_data.Data_value.t -> string
(** Bounded rendering of a data value for diagnostics. *)

val conv_int : Fsdata_data.Data_value.t -> int
(** [convPrim(int, d)]. *)

val conv_string : Fsdata_data.Data_value.t -> string
(** [convPrim(string, d)]. *)

val conv_bool : Fsdata_data.Data_value.t -> bool
(** [convPrim(bool, d)]. *)

val conv_float : Fsdata_data.Data_value.t -> float
(** [convFloat(float, d)]: accepts integers too (rule
    [convFloat(float, i) ⇝ f]). *)

val conv_bit_bool : Fsdata_data.Data_value.t -> bool
(** The bit-shape conversion: booleans pass through, 0 and 1 convert. *)

val conv_date : Fsdata_data.Data_value.t -> Fsdata_data.Date.t
(** The date conversion: strings in a recognized format parse. *)

val conv_field :
  record:string -> field:string -> Fsdata_data.Data_value.t -> Fsdata_data.Data_value.t
(** [convField(nu, nu', d, id)]: the raw field value, or [Null] when the
    field is missing; raises when [d] is not a record named [record]. *)

val conv_null :
  (Fsdata_data.Data_value.t -> 'a) -> Fsdata_data.Data_value.t -> 'a option
(** [convNull]: [None] on null, [Some (k d)] otherwise. *)

val conv_elements :
  (Fsdata_data.Data_value.t -> 'a) -> Fsdata_data.Data_value.t -> 'a list
(** [convElements]: maps [k] over a collection; null reads as the empty
    collection. *)

val has_shape : Fsdata_core.Shape.t -> Fsdata_data.Data_value.t -> bool
(** Re-export of {!Fsdata_core.Shape_check.has_shape}. *)

val select_single :
  Fsdata_core.Shape.t ->
  (Fsdata_data.Data_value.t -> 'a) ->
  Fsdata_data.Data_value.t ->
  'a
(** Heterogeneous-collection access with multiplicity 1: the first element
    matching the shape; raises when there is none. *)

val select_optional :
  Fsdata_core.Shape.t ->
  (Fsdata_data.Data_value.t -> 'a) ->
  Fsdata_data.Data_value.t ->
  'a option
(** Multiplicity 1?. *)

val select_multiple :
  Fsdata_core.Shape.t ->
  (Fsdata_data.Data_value.t -> 'a) ->
  Fsdata_data.Data_value.t ->
  'a list
(** Multiplicity *. *)

(** {1 Lenient variants}

    Option-returning counterparts for graceful degradation: where the
    strict operation raises {!Conversion_error}, these return [None], so
    callers scrubbing partially-convertible corpora can keep the samples
    (and fields) that do convert. *)

val try_conv : (Fsdata_data.Data_value.t -> 'a) -> Fsdata_data.Data_value.t -> 'a option
(** [try_conv k d] is [Some (k d)], or [None] if [k] raises
    {!Conversion_error}. *)

val conv_int_opt : Fsdata_data.Data_value.t -> int option
val conv_string_opt : Fsdata_data.Data_value.t -> string option
val conv_bool_opt : Fsdata_data.Data_value.t -> bool option
val conv_float_opt : Fsdata_data.Data_value.t -> float option
val conv_bit_bool_opt : Fsdata_data.Data_value.t -> bool option
val conv_date_opt : Fsdata_data.Data_value.t -> Fsdata_data.Date.t option

val conv_field_opt :
  record:string ->
  field:string ->
  Fsdata_data.Data_value.t ->
  Fsdata_data.Data_value.t option

val conv_elements_opt :
  (Fsdata_data.Data_value.t -> 'a) -> Fsdata_data.Data_value.t -> 'a list option

val select_single_opt :
  Fsdata_core.Shape.t ->
  (Fsdata_data.Data_value.t -> 'a) ->
  Fsdata_data.Data_value.t ->
  'a option
(** Like {!select_single} but [None] when no element matches — unlike
    {!select_optional}, which is the multiplicity-1? accessor with the
    same behaviour; this one exists as the lenient form of the
    multiplicity-1 accessor. *)
