(** A minimal HTTP/1.1 client over plain sockets.

    Just enough protocol for the evolution subsystem's two outbound
    needs — webhook delivery POSTs and the [fsdata watch] long-poll —
    against servers we also wrote (ours answers every request with
    [Content-Length] and honours [Connection: close]). Not a general
    client: no TLS, no redirects, no chunked encoding, IP literals or
    resolvable hostnames only.

    Socket I/O goes through an injectable {!io} record so the chaos
    tests can interpose [Fsdata_serve.Fault_net] (connection resets,
    torn writes, delays) without this library depending on the serve
    layer. *)

type io = {
  read : Unix.file_descr -> bytes -> int -> int -> int;
  write : Unix.file_descr -> string -> int -> int -> int;
}
(** The two syscalls a request makes after [connect]. The default is
    [Unix.read] / [Unix.write_substring]; tests substitute fault-shimmed
    versions. *)

val default_io : io

val parse_url : string -> (string * int * string, string) result
(** [parse_url "http://host:port/path"] is [Ok (host, port, path)];
    the port defaults to 80 and the path to ["/"]. Only [http://] is
    supported — anything else is a descriptive [Error]. *)

val request :
  ?io:io ->
  ?timeout_s:float ->
  ?headers:(string * string) list ->
  meth:string ->
  url:string ->
  ?body:string ->
  unit ->
  (int * string, string) result
(** One request, one connection ([Connection: close]): returns the
    response status and body. [timeout_s] (default 5) bounds connect,
    send and receive via socket timeouts — an expired timeout, a refused
    connection, a mid-response reset all come back as [Error], never an
    exception. *)
