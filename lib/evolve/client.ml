type io = {
  read : Unix.file_descr -> bytes -> int -> int -> int;
  write : Unix.file_descr -> string -> int -> int -> int;
}

let default_io = { read = Unix.read; write = Unix.write_substring }

let parse_url url =
  let prefix = "http://" in
  if not (String.starts_with ~prefix url) then
    Error (Printf.sprintf "%s: only http:// URLs are supported" url)
  else
    let rest =
      String.sub url (String.length prefix)
        (String.length url - String.length prefix)
    in
    let hostport, path =
      match String.index_opt rest '/' with
      | None -> (rest, "/")
      | Some i ->
          (String.sub rest 0 i, String.sub rest i (String.length rest - i))
    in
    let host, port =
      match String.index_opt hostport ':' with
      | None -> (hostport, Ok 80)
      | Some i ->
          let p = String.sub hostport (i + 1) (String.length hostport - i - 1) in
          ( String.sub hostport 0 i,
            match int_of_string_opt p with
            | Some n when n > 0 && n < 65536 -> Ok n
            | _ -> Error (Printf.sprintf "%s: bad port %S" url p) )
    in
    match port with
    | Error _ as e -> e
    | Ok port ->
        if host = "" then Error (Printf.sprintf "%s: missing host" url)
        else Ok (host, port, path)

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
          Error (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0))

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* Read the response whole: tiny bodies (ours carry a shape and a
   program), one connection per request. Stops at Content-Length when
   declared, at EOF otherwise. *)
let read_response io fd =
  let buf = Bytes.create 8192 in
  let acc = Buffer.create 1024 in
  let rec fill stop_at =
    let enough () =
      match stop_at with Some n -> Buffer.length acc >= n | None -> false
    in
    if enough () then ()
    else
      match io.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes acc buf 0 n;
          fill stop_at
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill stop_at
  in
  (* first: enough bytes to see the header/body split *)
  let rec header_end () =
    let text = Buffer.contents acc in
    match find_sub text "\r\n\r\n" with
    | Some i -> Some (text, i)
    | None -> (
        match io.read fd buf 0 (Bytes.length buf) with
        | 0 -> None
        | n ->
            Buffer.add_subbytes acc buf 0 n;
            header_end ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> header_end ())
  in
  match header_end () with
  | None -> Error "truncated response: no header terminator"
  | Some (text, split) -> (
      let head = String.sub text 0 split in
      match String.split_on_char '\r' head with
      | [] -> Error "empty response"
      | status_line :: _ -> (
          let status =
            match String.split_on_char ' ' status_line with
            | _ :: code :: _ -> int_of_string_opt code
            | _ -> None
          in
          match status with
          | None ->
              Error (Printf.sprintf "malformed status line %S" status_line)
          | Some status ->
              let content_length =
                String.split_on_char '\n' head
                |> List.find_map (fun line ->
                       let line = String.trim line in
                       match String.index_opt line ':' with
                       | Some i
                         when String.lowercase_ascii (String.sub line 0 i)
                              = "content-length" ->
                           int_of_string_opt
                             (String.trim
                                (String.sub line (i + 1)
                                   (String.length line - i - 1)))
                       | _ -> None)
              in
              let body_start = split + 4 in
              (match content_length with
              | Some n -> fill (Some (body_start + n))
              | None -> fill None);
              let text = Buffer.contents acc in
              let body =
                String.sub text body_start (String.length text - body_start)
              in
              let body =
                match content_length with
                | Some n when n <= String.length body -> String.sub body 0 n
                | _ -> body
              in
              Ok (status, body)))

let write_all io fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match io.write fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let request ?(io = default_io) ?(timeout_s = 5.0) ?(headers = []) ~meth ~url
    ?(body = "") () =
  match parse_url url with
  | Error _ as e -> e
  | Ok (host, port, path) -> (
      match resolve host with
      | Error _ as e -> e
      | Ok addr -> (
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
          match
            Fun.protect ~finally (fun () ->
                (try
                   Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
                   Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
                 with Unix.Unix_error _ -> ());
                Unix.connect fd (Unix.ADDR_INET (addr, port));
                let b = Buffer.create 256 in
                Buffer.add_string b
                  (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
                Buffer.add_string b
                  (Printf.sprintf "host: %s:%d\r\n" host port);
                Buffer.add_string b
                  (Printf.sprintf "content-length: %d\r\n"
                     (String.length body));
                Buffer.add_string b "connection: close\r\n";
                List.iter
                  (fun (k, v) -> Buffer.add_string b (k ^ ": " ^ v ^ "\r\n"))
                  headers;
                Buffer.add_string b "\r\n";
                Buffer.add_string b body;
                write_all io fd (Buffer.contents b);
                read_response io fd)
          with
          | result -> result
          | exception Unix.Unix_error (e, fn, _) ->
              Error (Printf.sprintf "%s: %s (%s)" url (Unix.error_message e) fn)))
