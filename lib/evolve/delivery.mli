(** The webhook delivery worker: at-least-once version notifications.

    Registered hooks ({!Fsdata_registry.Registry.add_hook}) carry a
    durable cursor — the last version whose notification the endpoint
    acknowledged with a 2xx. The worker walks every stream's hooks,
    POSTs one JSON notification per undelivered version {e in order}
    (cursor+1 first; a version is never skipped), and advances the
    cursor through the registry WAL only {e after} the 2xx — so a crash
    anywhere between POST and ack redelivers, which is exactly
    at-least-once. Endpoints must treat the [(stream, version)] pair as
    an idempotency key.

    Failures back off exponentially per hook (base doubling up to the
    max), so one dead endpoint cannot hot-loop the worker while other
    hooks keep delivering. The worker parks on a wildcard
    {!Notify.waiter} between scans: a push wakes it immediately, an
    idle registry costs a few wakeups per second.

    The serve layer runs {!loop} in a dedicated domain under its
    crash-only supervisor; tests drive {!step} directly and inject
    socket faults through the {!Client.io} hook. *)

type config = {
  base_backoff_ms : int;  (** first retry delay (default 50) *)
  max_backoff_ms : int;  (** backoff ceiling (default 5000) *)
  timeout_s : float;  (** per-POST socket timeout (default 5.) *)
  io : Client.io option;  (** fault-shimmed I/O for tests; [None] = real *)
}

val default_config : config

val payload :
  stream:string -> version:int -> shape:Fsdata_core.Shape.t option -> string
(** The notification body: a JSON object with [stream], [version] and
    [shape] (the paper notation at that version — [null] in the rare
    case the bounded history evicted it before delivery caught up).
    Exposed so tests and receivers can pin the format. *)

type state
(** Per-hook retry bookkeeping (backoff and next-due times). In-memory
    only: after a restart every failing hook is due immediately, which
    at worst redelivers — never skips. *)

val state : unit -> state

val step : ?cfg:config -> state -> Fsdata_registry.Registry.t -> float
(** One scan: attempt every due delivery (at most one version per hook
    per scan; a success leaves the next version due immediately) and
    return the suggested sleep in seconds until the next due attempt —
    [0.] if more work is ready now, [infinity] if every hook is idle. *)

val loop :
  ?cfg:config ->
  notify:Notify.t ->
  stop:(unit -> bool) ->
  Fsdata_registry.Registry.t ->
  unit
(** Run {!step} until [stop ()], parking on a wildcard waiter between
    scans (woken by every {!Notify.notify}); polls [stop] at least every
    250ms. Exceptions propagate — the caller supervises. *)
