module Metrics = Fsdata_obs.Metrics
module Clock = Fsdata_obs.Clock

let g_watchers = Metrics.gauge "evolve.watchers"

(* A registered waiter: its key (stream name, or None for wildcard) and
   the write end notify pokes. The read end stays with the waiting
   caller. *)
type entry = { key : string option; wr : Unix.file_descr }

type t = {
  lock : Mutex.t;
  mutable entries : entry list;
  capacity : int;
}

let create ~capacity = { lock = Mutex.create (); entries = []; capacity = max 1 capacity }

let is_request e = e.key <> None

let waiting t =
  Mutex.protect t.lock (fun () ->
      List.length (List.filter is_request t.entries))

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Both ends non-blocking: notify must never stall on a full pipe (a
   full pipe means a wake is already pending), and draining must never
   stall on an empty one. *)
let make_pipe () =
  let rd, wr = Unix.pipe () in
  Unix.set_nonblock rd;
  Unix.set_nonblock wr;
  (rd, wr)

let register t key =
  Mutex.protect t.lock (fun () ->
      if
        key <> None
        && List.length (List.filter is_request t.entries) >= t.capacity
      then None
      else begin
        let rd, wr = make_pipe () in
        t.entries <- { key; wr } :: t.entries;
        Some (rd, wr)
      end)

let deregister t wr =
  Mutex.protect t.lock (fun () ->
      t.entries <- List.filter (fun e -> e.wr != wr) t.entries)

let notify t name =
  let fds =
    Mutex.protect t.lock (fun () ->
        List.filter_map
          (fun e ->
            match e.key with
            | Some k when k <> name -> None
            | _ -> Some e.wr)
          t.entries)
  in
  List.iter
    (fun wr ->
      try ignore (Unix.write_substring wr "!" 0 1) with Unix.Unix_error _ -> ())
    fds

let drain rd =
  let buf = Bytes.create 256 in
  try ignore (Unix.read rd buf 0 256) with Unix.Unix_error _ -> ()

(* select until readable or timeout; EINTR retried against the same
   absolute deadline *)
let select_until rd deadline_ns =
  let rec go () =
    let remaining =
      Int64.to_float (Int64.sub deadline_ns (Clock.now_ns ())) /. 1e9
    in
    if remaining <= 0. then false
    else
      match Unix.select [ rd ] [] [] remaining with
      | [], _, _ -> false
      | _ -> true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let wait t ~key ~seconds ~poll =
  match poll () with
  | Some v -> `Ready v
  | None -> (
      match register t (Some key) with
      | None -> `Capacity
      | Some (rd, wr) ->
          Metrics.gauge_add g_watchers 1.0;
          let cleanup () =
            deregister t wr;
            close_quiet rd;
            close_quiet wr;
            Metrics.gauge_add g_watchers (-1.0)
          in
          Fun.protect ~finally:cleanup @@ fun () ->
          let deadline_ns =
            Int64.add (Clock.now_ns ())
              (Int64.of_float (Float.max 0. seconds *. 1e9))
          in
          (* re-poll after registration: a bump between the first poll
             and the pipe landing in the table would otherwise be lost *)
          let rec loop () =
            match poll () with
            | Some v -> `Ready v
            | None ->
                if select_until rd deadline_ns then begin
                  drain rd;
                  loop ()
                end
                else (* timed out; one last look in case a bump raced *)
                  match poll () with Some v -> `Ready v | None -> `Timeout
          in
          loop ())

type waiter = { w_rd : Unix.file_descr; w_wr : Unix.file_descr; owner : t }

let waiter t =
  match
    Mutex.protect t.lock (fun () ->
        let rd, wr = make_pipe () in
        t.entries <- { key = None; wr } :: t.entries;
        (rd, wr))
  with
  | rd, wr -> { w_rd = rd; w_wr = wr; owner = t }

let await w ~seconds =
  let deadline_ns =
    Int64.add (Clock.now_ns ()) (Int64.of_float (Float.max 0. seconds *. 1e9))
  in
  if select_until w.w_rd deadline_ns then begin
    drain w.w_rd;
    true
  end
  else false

let close_waiter w =
  deregister w.owner w.w_wr;
  close_quiet w.w_rd;
  close_quiet w.w_wr
