module Registry = Fsdata_registry.Registry
module Shape = Fsdata_core.Shape
module Provide = Fsdata_provider.Provide
module Migrate = Fsdata_provider.Migrate
module Syntax = Fsdata_foo.Syntax
module TC = Fsdata_foo.Typecheck
module Metrics = Fsdata_obs.Metrics
module Trace = Fsdata_obs.Trace

(* --- instruments (docs/OBSERVABILITY.md, "evolve.*") --- *)

let m_migrations = Metrics.counter "evolve.migrations"
let m_failures = Metrics.counter "evolve.migration_failures"

type rewritten = {
  stream : string;
  from_version : int;
  to_version : int;
  old_shape : Shape.t;
  new_shape : Shape.t;
  program : Syntax.expr;
  ty : Syntax.ty;
}

type error =
  | No_stream
  | Unknown_version of int * int
  | Evicted of int * int
  | Parse_error of string
  | Ill_typed of string
  | Unsupported of string
  | Internal of string

let pp_error ppf = function
  | No_stream -> Fmt.string ppf "no such stream"
  | Unknown_version (v, cur) ->
      Fmt.pf ppf "stream never had version %d (current version is %d)" v cur
  | Evicted (v, oldest) ->
      Fmt.pf ppf
        "version %d was evicted by the history limit (oldest retained \
         version is %d)"
        v oldest
  | Parse_error m -> Fmt.pf ppf "program does not parse: %s" m
  | Ill_typed m ->
      Fmt.pf ppf "program does not check against the old shape: %s" m
  | Unsupported m -> Fmt.pf ppf "cannot migrate: %s" m
  | Internal m -> Fmt.pf ppf "internal migration error: %s" m

let compute reg ~stream ~since ~program =
  match Registry.find reg stream with
  | None -> Error No_stream
  | Some st -> (
      match Registry.version_status st since with
      | `Unknown -> Error (Unknown_version (since, st.Registry.version))
      | `Evicted -> Error (Evicted (since, Registry.oldest_retained st))
      | `Shape old_shape -> (
          match Fsdata_foo.Parser.parse_expr_result program with
          | Error m -> Error (Parse_error m)
          | Ok e -> (
              let old_provided = Provide.provide ~format:`Json old_shape in
              let new_provided =
                Provide.provide ~format:`Json st.Registry.shape
              in
              let env p = [ ("y", p.Provide.root_ty) ] in
              match
                TC.synth old_provided.Provide.classes (env old_provided) e
              with
              | Error te -> Error (Ill_typed (Fmt.str "%a" TC.pp_error te))
              | Ok _ -> (
                  match Migrate.migrate ~old_provided ~new_provided e with
                  | Error (Migrate.Unsupported m) -> Error (Unsupported m)
                  | Ok e' -> (
                      (* self-verification: the service never hands out a
                         program it cannot itself check against the
                         current σ's provided type *)
                      match
                        TC.synth new_provided.Provide.classes
                          (env new_provided) e'
                      with
                      | Error te ->
                          Error
                            (Internal
                               (Fmt.str
                                  "rewritten program failed to re-check: %a"
                                  TC.pp_error te))
                      | Ok ty ->
                          Ok
                            {
                              stream;
                              from_version = since;
                              to_version = st.Registry.version;
                              old_shape;
                              new_shape = st.Registry.shape;
                              program = e';
                              ty;
                            })))))

let migrate reg ~stream ~since ~program =
  Trace.with_span "evolve.migrate" @@ fun () ->
  let result = compute reg ~stream ~since ~program in
  (match result with
  | Ok _ -> Metrics.incr m_migrations
  | Error _ -> Metrics.incr m_failures);
  result
