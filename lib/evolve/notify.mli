(** The bounded waiter table behind version subscriptions.

    Long-poll watchers ([GET /streams/:name/watch]) park here until
    {!Fsdata_registry.Registry.push} bumps their stream's version; the
    registry's bump listener calls {!notify}, which wakes exactly the
    waiters keyed by that stream (plus any wildcard waiters, e.g. the
    webhook delivery worker). Each waiter is a pipe: registration
    creates one, {!notify} writes a byte to its write end, and the
    waiter blocks in [select] on the read end with a timeout — the only
    way to combine "woken by another domain" with "bounded by the
    request deadline" without a timed condition wait, which OCaml's
    stdlib does not have.

    The table is {e bounded}: at most [capacity] request waiters may be
    parked at once (each occupies a worker domain and two file
    descriptors); one past the bound is refused with [`Capacity], which
    the server answers 503 — long-polls are shed exactly like
    over-budget bodies. Wildcard waiters ({!waiter}) are permanent,
    owned by background workers, and do not count against the bound.

    Waking is strictly a {e hint}: [wait] re-runs its [poll] after every
    wake and after registration (closing the lost-wakeup window between
    the caller's first check and the pipe landing in the table), so a
    spurious wake — a bump that does not satisfy the watcher's [since]
    — just re-arms the select with the time remaining. *)

type t

val create : capacity:int -> t
(** An empty table admitting at most [capacity] concurrent {!wait}s
    (clamped to at least 1). *)

val wait :
  t ->
  key:string ->
  seconds:float ->
  poll:(unit -> 'a option) ->
  [ `Ready of 'a | `Timeout | `Capacity ]
(** [wait t ~key ~seconds ~poll] returns [`Ready v] as soon as
    [poll () = Some v] — checked immediately, after registration, and
    after every {!notify} on [key] — or [`Timeout] once [seconds] have
    elapsed without the poll succeeding, or [`Capacity] if the table is
    full. The waiter is always deregistered and its pipe closed before
    returning. *)

val notify : t -> string -> unit
(** Wake every waiter registered under this key, and every wildcard
    waiter. Never blocks: pipe write ends are non-blocking, and a full
    pipe already guarantees the waiter has a wake pending. *)

val waiting : t -> int
(** Request waiters currently parked (wildcard waiters excluded). *)

(** {2 Permanent wildcard waiters} *)

type waiter

val waiter : t -> waiter
(** Register a permanent waiter woken by {e every} {!notify}. Owned by
    background workers (the webhook delivery loop); not counted against
    [capacity]. *)

val await : waiter -> seconds:float -> bool
(** Block until the waiter is woken or [seconds] elapse; [true] if
    woken. Drains the pipe, so consecutive awaits do not busy-spin on
    stale wakes. *)

val close_waiter : waiter -> unit
(** Deregister and close the pipe. Idempotent. *)
