module Registry = Fsdata_registry.Registry
module Shape = Fsdata_core.Shape
module Dv = Fsdata_data.Data_value
module Json = Fsdata_data.Json
module Metrics = Fsdata_obs.Metrics
module Clock = Fsdata_obs.Clock
module Trace = Fsdata_obs.Trace

(* --- instruments (docs/OBSERVABILITY.md, "evolve.*") --- *)

let g_hooks = Metrics.gauge "evolve.hooks"
let m_deliveries = Metrics.counter "evolve.deliveries"
let m_delivery_failures = Metrics.counter "evolve.delivery_failures"

type config = {
  base_backoff_ms : int;
  max_backoff_ms : int;
  timeout_s : float;
  io : Client.io option;
}

let default_config =
  { base_backoff_ms = 50; max_backoff_ms = 5_000; timeout_s = 5.; io = None }

let payload ~stream ~version ~shape =
  Json.to_string ~indent:2
    (Dv.Record
       ( Dv.json_record_name,
         [
           ("stream", Dv.String stream);
           ("version", Dv.Int version);
           ( "shape",
             match shape with
             | Some s -> Dv.String (Fmt.str "%a" Shape.pp s)
             | None -> Dv.Null );
         ] ))
  ^ "\n"

type retry = { mutable backoff_ms : int; mutable due_ns : int64 }

type state = (string * string, retry) Hashtbl.t

let state () : state = Hashtbl.create 16

let retry_slot (s : state) key base =
  match Hashtbl.find_opt s key with
  | Some r -> r
  | None ->
      let r = { backoff_ms = base; due_ns = 0L } in
      Hashtbl.replace s key r;
      r

let set_hooks_gauge reg =
  let n =
    List.fold_left
      (fun acc st -> acc + List.length st.Registry.hooks)
      0 (Registry.list reg)
  in
  Metrics.gauge_set g_hooks (float_of_int n)

(* One delivery attempt: POST the next undelivered version, ack on 2xx.
   Any failure — refused connection, reset, timeout, non-2xx, or the ack
   append itself raising — counts as a failed attempt and backs off; the
   cursor only moves on a fully acknowledged delivery. *)
let attempt ?(cfg = default_config) reg st (h : Registry.hook) =
  let v = h.Registry.delivered + 1 in
  let body =
    payload ~stream:st.Registry.name ~version:v
      ~shape:(Registry.version_shape st v)
  in
  let result =
    Client.request ?io:cfg.io ~timeout_s:cfg.timeout_s
      ~headers:[ ("content-type", "application/json") ]
      ~meth:"POST" ~url:h.Registry.url ~body ()
  in
  match result with
  | Ok (status, _) when status >= 200 && status < 300 -> (
      match
        Registry.ack_delivery reg ~stream:st.Registry.name ~url:h.Registry.url
          ~version:v
      with
      | () ->
          Metrics.incr m_deliveries;
          true
      | exception Unix.Unix_error _ ->
          (* the POST landed but the durable cursor did not: redeliver
             later — at-least-once, never a skip *)
          Metrics.incr m_delivery_failures;
          false)
  | Ok _ | Error _ ->
      Metrics.incr m_delivery_failures;
      false

let step ?(cfg = default_config) (s : state) reg =
  Trace.with_span "evolve.deliver" @@ fun () ->
  set_hooks_gauge reg;
  let now = Clock.now_ns () in
  let next = ref infinity in
  let sooner seconds = if seconds < !next then next := seconds in
  List.iter
    (fun st ->
      List.iter
        (fun (h : Registry.hook) ->
          if h.Registry.delivered < st.Registry.version then begin
            let key = (st.Registry.name, h.Registry.url) in
            let r = retry_slot s key cfg.base_backoff_ms in
            if r.due_ns <= now then
              if attempt ~cfg reg st h then begin
                r.backoff_ms <- cfg.base_backoff_ms;
                r.due_ns <- 0L;
                (* more versions may be pending behind this one *)
                sooner 0.
              end
              else begin
                r.due_ns <-
                  Int64.add (Clock.now_ns ())
                    (Int64.of_int (r.backoff_ms * 1_000_000));
                r.backoff_ms <- min cfg.max_backoff_ms (r.backoff_ms * 2);
                sooner (float_of_int r.backoff_ms /. 1e3)
              end
            else
              sooner (Int64.to_float (Int64.sub r.due_ns now) /. 1e9)
          end)
        st.Registry.hooks)
    (Registry.list reg);
  !next

let loop ?(cfg = default_config) ~notify ~stop reg =
  let s = state () in
  let w = Notify.waiter notify in
  Fun.protect ~finally:(fun () -> Notify.close_waiter w) @@ fun () ->
  while not (stop ()) do
    let next = step ~cfg s reg in
    (* park until the next due retry or a push wakes us; cap the nap so
       [stop] is honoured within a bounded delay *)
    let nap = Float.min 0.25 (Float.max 0.005 next) in
    if next > 0. then ignore (Notify.await w ~seconds:nap)
  done
