(** Remark 1 as a service: rewrite a user program across registry
    versions.

    The registry's bounded history stores the shape at every retained
    version bump; {!migrate} looks up the shape a program was compiled
    against, re-runs the type provider on both it and the stream's
    current shape, and applies {!Fsdata_provider.Migrate} — the paper's
    three local transformations — to produce a program over the current
    provided type. The service {e verifies its own output}: the
    rewritten program is re-checked against the new provided classes
    before it is returned, so a caller never receives a program that
    does not shape-check against the current σ.

    Both providers run with the JSON naming conventions (`Json), the
    registry's lingua franca: shapes are format-agnostic once inferred,
    and the provided member names only depend on the shape. *)

type rewritten = {
  stream : string;
  from_version : int;
  to_version : int;  (** the stream's current version *)
  old_shape : Fsdata_core.Shape.t;
  new_shape : Fsdata_core.Shape.t;
  program : Fsdata_foo.Syntax.expr;  (** the rewritten program *)
  ty : Fsdata_foo.Syntax.ty;
      (** its type against the {e new} provided classes — by Remark 1,
          also its type against the old ones *)
}

type error =
  | No_stream  (** the stream does not exist: 404 *)
  | Unknown_version of int * int
      (** (asked, current): the stream never reached it — 404 *)
  | Evicted of int * int
      (** (asked, oldest retained): the version existed but
          [--history-limit] dropped its shape — 409, the client must
          re-infer or migrate from a retained version *)
  | Parse_error of string  (** the program is not Foo syntax: 400 *)
  | Ill_typed of string
      (** the program does not check against the old shape's provided
          type: 422 *)
  | Unsupported of string
      (** outside the migratable fragment
          ({!Fsdata_provider.Migrate.error}): 422 *)
  | Internal of string
      (** the rewritten program failed its re-check — a migrator bug,
          never the client's fault: 500 *)

val pp_error : Format.formatter -> error -> unit

val migrate :
  Fsdata_registry.Registry.t ->
  stream:string ->
  since:int ->
  program:string ->
  (rewritten, error) result
(** [migrate reg ~stream ~since ~program] rewrites [program] (Foo
    concrete syntax, free variable [y] = the provided root) from the
    provided type of [stream]'s version [since] to that of its current
    version. Counted in [evolve.migrations] / [evolve.migration_failures];
    traced as [evolve.migrate]. *)
