(* Doubly-linked intrusive LRU list + hashtable index, one mutex. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards MRU *)
  mutable next : 'a node option;  (* towards LRU *)
}

type 'a t = {
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* MRU *)
  mutable tail : 'a node option;  (* LRU *)
  lock : Mutex.t;
}

let create ~capacity =
  {
    cap = capacity;
    tbl = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    lock = Mutex.create ();
  }

let capacity t = t.cap
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t key =
  if t.cap <= 0 then None
  else
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | None -> None
        | Some n ->
            unlink t n;
            push_front t n;
            Some n.value)

let add t key value =
  if t.cap <= 0 then 0
  else
    Mutex.protect t.lock (fun () ->
        (match Hashtbl.find_opt t.tbl key with
        | Some n ->
            n.value <- value;
            unlink t n;
            push_front t n
        | None ->
            let n = { key; value; prev = None; next = None } in
            Hashtbl.replace t.tbl key n;
            push_front t n);
        if Hashtbl.length t.tbl > t.cap then (
          match t.tail with
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.tbl lru.key;
              1
          | None -> 0)
        else 0)
