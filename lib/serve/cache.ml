(* Doubly-linked intrusive LRU list + hashtable index, one mutex. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable expires_at : int64;  (* monotonic ns deadline; Int64.max_int = never *)
  mutable prev : 'a node option;  (* towards MRU *)
  mutable next : 'a node option;  (* towards LRU *)
}

type 'a t = {
  cap : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* MRU *)
  mutable tail : 'a node option;  (* LRU *)
  lock : Mutex.t;
}

let create ~capacity =
  {
    cap = capacity;
    tbl = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    lock = Mutex.create ();
  }

let capacity t = t.cap
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let expired n = n.expires_at <> Int64.max_int && Fsdata_obs.Clock.now_ns () >= n.expires_at

let find t key =
  if t.cap <= 0 then None
  else
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | None -> None
        | Some n when expired n ->
            unlink t n;
            Hashtbl.remove t.tbl key;
            None
        | Some n ->
            unlink t n;
            push_front t n;
            Some n.value)

let add t ?ttl_ns key value =
  if t.cap <= 0 then 0
  else
    let expires_at =
      match ttl_ns with
      | None -> Int64.max_int
      | Some ttl -> Int64.add (Fsdata_obs.Clock.now_ns ()) ttl
    in
    Mutex.protect t.lock (fun () ->
        (match Hashtbl.find_opt t.tbl key with
        | Some n ->
            n.value <- value;
            n.expires_at <- expires_at;
            unlink t n;
            push_front t n
        | None ->
            let n = { key; value; expires_at; prev = None; next = None } in
            Hashtbl.replace t.tbl key n;
            push_front t n);
        if Hashtbl.length t.tbl > t.cap then (
          match t.tail with
          | Some lru ->
              unlink t lru;
              Hashtbl.remove t.tbl lru.key;
              1
          | None -> 0)
        else 0)

let remove t key =
  if t.cap <= 0 then false
  else
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | None -> false
        | Some n ->
            unlink t n;
            Hashtbl.remove t.tbl key;
            true)

let remove_where t pred =
  if t.cap <= 0 then 0
  else
    Mutex.protect t.lock (fun () ->
        let doomed =
          Hashtbl.fold (fun k n acc -> if pred k then n :: acc else acc) t.tbl []
        in
        List.iter
          (fun n ->
            unlink t n;
            Hashtbl.remove t.tbl n.key)
          doomed;
        List.length doomed)

let clear t =
  Mutex.protect t.lock (fun () ->
      let n = Hashtbl.length t.tbl in
      Hashtbl.reset t.tbl;
      t.head <- None;
      t.tail <- None;
      n)
