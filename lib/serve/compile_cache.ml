module Shape = Fsdata_core.Shape
module Shape_compile = Fsdata_core.Shape_compile
module Metrics = Fsdata_obs.Metrics

let hits = Metrics.counter "compile.cache.hits"
let misses = Metrics.counter "compile.cache.misses"
let evictions = Metrics.counter "compile.cache.evictions"

(* An MRU list is the right structure at serving-cache sizes (a few dozen
   hot shapes): hits are a pointer-equality scan with no allocation, and
   the hot shapes bubble to the front. *)
type t = {
  lock : Mutex.t;
  capacity : int;
  mutable entries : (Shape.t * Shape_compile.compiled) list;
}

let create ~capacity = { lock = Mutex.create (); capacity; entries = [] }

let length t = Mutex.protect t.lock (fun () -> List.length t.entries)

let get t shape =
  if t.capacity <= 0 then Shape_compile.compile shape
  else
    let cached =
      Mutex.protect t.lock (fun () ->
          match List.find_opt (fun (s, _) -> s == shape) t.entries with
          | Some (_, compiled) as hit ->
              (* move to front so hot shapes stay resident *)
              t.entries <-
                (shape, compiled) :: List.filter (fun (s, _) -> s != shape) t.entries;
              hit
          | None -> None)
    in
    match cached with
    | Some (_, compiled) ->
        Metrics.incr hits;
        compiled
    | None ->
        Metrics.incr misses;
        (* compile outside the lock: concurrent misses on the same shape
           may compile twice, which is only wasted work, never wrong *)
        let compiled = Shape_compile.compile shape in
        Mutex.protect t.lock (fun () ->
            if not (List.exists (fun (s, _) -> s == shape) t.entries) then begin
              let entries = (shape, compiled) :: t.entries in
              let n = List.length entries in
              if n > t.capacity then begin
                Metrics.incr evictions;
                t.entries <- List.filteri (fun i _ -> i < t.capacity) entries
              end
              else t.entries <- entries
            end);
        compiled
