module Shape = Fsdata_core.Shape
module Infer = Fsdata_core.Infer
module Par_infer = Fsdata_core.Par_infer
module Shape_parser = Fsdata_core.Shape_parser
module Shape_check = Fsdata_core.Shape_check
module Shape_compile = Fsdata_core.Shape_compile
module Preference = Fsdata_core.Preference
module Explain = Fsdata_core.Explain
module Diagnostic = Fsdata_data.Diagnostic
module Dv = Fsdata_data.Data_value
module Json = Fsdata_data.Json
module Xml = Fsdata_data.Xml
module Metrics = Fsdata_obs.Metrics
module Clock = Fsdata_obs.Clock

(* --- instruments (docs/OBSERVABILITY.md, "serve.*") --- *)

let req_infer = Metrics.counter "serve.requests.infer"
let req_check = Metrics.counter "serve.requests.check"
let req_explain = Metrics.counter "serve.requests.explain"
let req_metrics = Metrics.counter "serve.requests.metrics"
let req_healthz = Metrics.counter "serve.requests.healthz"
let req_other = Metrics.counter "serve.requests.other"
let resp_2xx = Metrics.counter "serve.responses.2xx"
let resp_4xx = Metrics.counter "serve.responses.4xx"
let resp_5xx = Metrics.counter "serve.responses.5xx"
let cache_hits = Metrics.counter "serve.cache.hits"
let cache_misses = Metrics.counter "serve.cache.misses"
let cache_evictions = Metrics.counter "serve.cache.evictions"
let http_errors = Metrics.counter "serve.http_errors"
let connections = Metrics.counter "serve.connections"
let latency_ms = Metrics.histogram "serve.latency_ms"
let inflight = Metrics.gauge "serve.inflight"

(* --- configuration and handler state --- *)

type config = {
  port : int;
  host : string;
  workers : int;
  timeout_ms : int;
  cache_entries : int;
  max_body : int;
  port_file : string option;
}

let default_config =
  {
    port = 8080;
    host = "127.0.0.1";
    workers = 4;
    timeout_ms = 10_000;
    cache_entries = 64;
    max_body = 64 * 1024 * 1024;
    port_file = None;
  }

type t = { cfg : config; cache : string Cache.t; compiled : Compile_cache.t }

(* Compiled parsers are small (proportional to the shape) and hot shapes
   are few; a fixed capacity decoupled from the response cache is
   enough. *)
let compiled_cache_capacity = 32

let create cfg =
  {
    cfg;
    cache = Cache.create ~capacity:cfg.cache_entries;
    compiled = Compile_cache.create ~capacity:compiled_cache_capacity;
  }

(* --- response helpers --- *)

let json_body fields =
  Json.to_string ~indent:2 (Dv.Record (Dv.json_record_name, fields)) ^ "\n"

let json_error status msg =
  Http.response ~status (json_body [ ("error", Dv.String msg) ])

let json_ok ?headers fields = Http.response ?headers ~status:200 (json_body fields)

let method_not_allowed allow =
  Http.response ~status:405
    ~headers:[ ("allow", allow) ]
    (json_body [ ("error", Dv.String (Printf.sprintf "use %s" allow)) ])

let shape_string s = Fmt.str "%a" Shape.pp s

(* --- /infer --- *)

(* The interning table is process-global; keep it from growing without
   bound on a long-lived server. 200k nodes is far beyond any hot set —
   clearing only costs future sharing, never correctness. *)
let hcons_guard () = if Shape.hcons_size () > 200_000 then Shape.hcons_clear ()

let quarantine_entry (q : Infer.quarantined) =
  let d = q.Infer.q_diagnostic in
  Dv.Record
    ( Dv.json_record_name,
      [
        ("index", Dv.Int q.Infer.q_index);
        ("line", Dv.Int d.Diagnostic.line);
        ("column", Dv.Int d.Diagnostic.column);
        ("message", Dv.String d.Diagnostic.message);
      ] )

let render_report ~format (report : Infer.report) shape =
  json_body
    [
      ("format", Dv.String format);
      ("shape", Dv.String (shape_string shape));
      ("total", Dv.Int report.Infer.total);
      ("quarantined", Dv.Int (List.length report.Infer.quarantined));
      ("samples", Dv.List (List.map quarantine_entry report.Infer.quarantined));
    ]

let handle_infer t req =
  if req.Http.meth <> "POST" then method_not_allowed "POST"
  else
    let format = Option.value ~default:"json" (Http.query_param req "format") in
    let jobs =
      match Http.query_param req "jobs" with
      | None -> Ok 1
      | Some s -> (
          match int_of_string_opt s with
          | Some n when n > 0 -> Ok n
          | Some 0 -> Ok (Par_infer.recommended_jobs ())
          | _ -> Error (Printf.sprintf "bad jobs value %S" s))
    in
    let budget =
      match Http.query_param req "max-errors" with
      | None -> Ok Diagnostic.Strict
      | Some s -> Diagnostic.budget_of_string s
    in
    match (format, jobs, budget) with
    | _, Error m, _ | _, _, Error m -> json_error 400 m
    | ("json" | "csv" | "xml"), Ok jobs, Ok budget -> (
        let key =
          Digest.to_hex
            (Digest.string
               (String.concat "\x00"
                  [
                    format;
                    string_of_int jobs;
                    Diagnostic.budget_to_string budget;
                    req.Http.body;
                  ]))
        in
        match Cache.find t.cache key with
        | Some body ->
            Metrics.incr cache_hits;
            Http.response ~headers:[ ("x-fsdata-cache", "hit") ] ~status:200 body
        | None -> (
            Metrics.incr cache_misses;
            let result =
              match format with
              | "json" -> Par_infer.of_json_tolerant ~jobs ~budget req.Http.body
              | "xml" ->
                  Par_infer.of_xml_samples_tolerant ~jobs ~budget
                    [ req.Http.body ]
              | _ -> Infer.of_csv_tolerant ~budget req.Http.body
            in
            match result with
            | Error m -> json_error 422 m
            | Ok report ->
                let shape = Shape.hcons report.Infer.shape in
                hcons_guard ();
                (* warm the compiled-parser cache: a client that infers a
                   shape and then re-parses documents against it (POST
                   /check?compiled=1) hits compiled code immediately *)
                if format = "json" then ignore (Compile_cache.get t.compiled shape);
                let body = render_report ~format report shape in
                Metrics.add cache_evictions (Cache.add t.cache key body);
                Http.response
                  ~headers:[ ("x-fsdata-cache", "miss") ]
                  ~status:200 body))
    | fmt, _, _ ->
        json_error 400
          (Printf.sprintf "unsupported format %S (use json, csv or xml)" fmt)

(* --- /check and /explain --- *)

let mismatch_entry (m : Explain.mismatch) =
  Dv.Record
    ( Dv.json_record_name,
      [
        ("at", Dv.String m.Explain.at);
        ("input", Dv.String (shape_string m.Explain.input));
        ("expected", Dv.String (shape_string m.Explain.expected));
        ("reason", Dv.String m.Explain.reason);
      ] )

let handle_checkish t ~explain req =
  if req.Http.meth <> "POST" then method_not_allowed "POST"
  else
    let compiled_mode =
      match Http.query_param req "compiled" with
      | None | Some "0" -> Ok false
      | Some ("1" | "true") -> Ok true
      | Some v -> Error (Printf.sprintf "bad compiled value %S (use 0 or 1)" v)
    in
    match (Http.query_param req "shape", compiled_mode) with
    | _, Error m -> json_error 400 m
    | None, _ -> json_error 400 "missing required query parameter shape"
    | Some text, Ok compiled_mode -> (
        match Shape_parser.parse_result text with
        | Error m -> json_error 400 m
        | Ok shape -> (
            let format =
              Option.value ~default:"json" (Http.query_param req "format")
            in
            if compiled_mode && (explain || format <> "json") then
              json_error 400 "compiled=1 applies to /check with format json"
            else
              let doc =
                match format with
                | "json" -> Json.parse_result req.Http.body
                | "xml" ->
                    Result.map
                      (fun tree -> Xml.to_data tree)
                      (Xml.parse_result req.Http.body)
                | f ->
                    Error
                      (Printf.sprintf "unsupported format %S (use json or xml)"
                         f)
              in
              match doc with
              | Error m -> json_error 422 m
              | Ok doc ->
                  let mode = if format = "xml" then `Xml else `Practical in
                  let input_shape = Infer.shape_of_value ~mode doc in
                  let conforms () =
                    if compiled_mode then begin
                      (* the shape-compiled engine: hot shapes hit a cached
                         parser; conformance is judged on the normalized
                         document (docs/COMPILED_PARSERS.md) *)
                      let shape = Shape.hcons shape in
                      hcons_guard ();
                      let parser = Compile_cache.get t.compiled shape in
                      match Shape_compile.parse parser req.Http.body with
                      | Shape_compile.Direct _ -> true
                      | Shape_compile.Fallback _ -> false
                    end
                    else Shape_check.has_shape shape doc
                  in
                  json_ok
                    (if explain then
                       [
                         ("input_shape", Dv.String (shape_string input_shape));
                         ("shape", Dv.String (shape_string shape));
                         ( "mismatches",
                           Dv.List
                             (List.map mismatch_entry
                                (Explain.explain input_shape shape)) );
                       ]
                     else
                       [
                         ("has_shape", Dv.Bool (conforms ()));
                         ( "preferred",
                           Dv.Bool (Preference.is_preferred input_shape shape)
                         );
                         ("input_shape", Dv.String (shape_string input_shape));
                         ("shape", Dv.String (shape_string shape));
                       ])))

(* --- routing --- *)

let handle_metrics req =
  if req.Http.meth <> "GET" then method_not_allowed "GET"
  else Http.response ~status:200 (Metrics.to_json ())

let handle_healthz req =
  if req.Http.meth <> "GET" then method_not_allowed "GET"
  else json_ok [ ("status", Dv.String "ok") ]

let route t req =
  match req.Http.path with
  | "/infer" -> handle_infer t req
  | "/check" -> handle_checkish t ~explain:false req
  | "/explain" -> handle_checkish t ~explain:true req
  | "/metrics" -> handle_metrics req
  | "/healthz" -> handle_healthz req
  | p -> json_error 404 (Printf.sprintf "no such endpoint %s" p)

let request_counter = function
  | "/infer" -> req_infer
  | "/check" -> req_check
  | "/explain" -> req_explain
  | "/metrics" -> req_metrics
  | "/healthz" -> req_healthz
  | _ -> req_other

let handle t req =
  Metrics.incr (request_counter req.Http.path);
  Metrics.gauge_add inflight 1.0;
  let t0 = Clock.now_ns () in
  let resp =
    match route t req with
    | resp -> resp
    | exception e -> json_error 500 (Printexc.to_string e)
  in
  Metrics.observe latency_ms
    (Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e6);
  Metrics.gauge_add inflight (-1.0);
  (Metrics.incr
     (if resp.Http.status < 300 then resp_2xx
      else if resp.Http.status < 500 then resp_4xx
      else resp_5xx));
  resp

(* --- connection handling --- *)

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

(* One keep-alive connection, start to close. Any socket fault (peer
   reset, send timeout) just ends the connection — the server never
   dies for a client's sake. *)
let serve_connection t ~stop fd =
  Metrics.incr connections;
  let tmo = float_of_int t.cfg.timeout_ms /. 1000. in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO tmo;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO tmo
   with Unix.Unix_error _ -> ());
  let limits = { Http.default_limits with Http.max_body = t.cfg.max_body } in
  let r = Http.reader_of_fd fd in
  let rec loop () =
    match Http.read_request ~limits r with
    | Ok None -> ()
    | Error e ->
        Metrics.incr http_errors;
        Metrics.incr (if e.Http.status < 500 then resp_4xx else resp_5xx);
        write_all fd
          (Http.serialize_response ~keep_alive:false
             (json_error e.Http.status e.Http.reason))
    | Ok (Some req) ->
        let resp = handle t req in
        (* during a drain, answer what's in hand but don't linger *)
        let ka = Http.keep_alive req && not (Atomic.get stop) in
        write_all fd (Http.serialize_response ~keep_alive:ka resp);
        if ka then loop ()
  in
  (try loop () with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- bounded connection queue --- *)

type conn_queue = {
  items : Unix.file_descr option Queue.t;  (* [None] = worker shutdown *)
  lock : Mutex.t;
  nonempty : Condition.t;
  capacity : int;
}

let queue_create capacity =
  {
    items = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    capacity;
  }

let queue_try_push q fd =
  Mutex.protect q.lock (fun () ->
      if Queue.length q.items >= q.capacity then false
      else begin
        Queue.add (Some fd) q.items;
        Condition.signal q.nonempty;
        true
      end)

let queue_push_sentinel q =
  Mutex.protect q.lock (fun () ->
      Queue.add None q.items;
      Condition.signal q.nonempty)

let queue_pop q =
  Mutex.lock q.lock;
  while Queue.is_empty q.items do
    Condition.wait q.nonempty q.lock
  done;
  let v = Queue.pop q.items in
  Mutex.unlock q.lock;
  v

let rec worker_loop t ~stop q =
  match queue_pop q with
  | None -> ()
  | Some fd ->
      serve_connection t ~stop fd;
      worker_loop t ~stop q

(* --- the accept loop --- *)

let run cfg =
  Metrics.set_enabled true;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = Atomic.make false in
  let quit _ = Atomic.set stop true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  let t = create cfg in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen sock 128;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  Printf.printf "fsdata: serving on http://%s:%d\n%!" cfg.host port;
  (match cfg.port_file with
  | Some path ->
      let oc = open_out path in
      output_string oc (string_of_int port);
      output_char oc '\n';
      close_out oc
  | None -> ());
  let workers = max 1 cfg.workers in
  let q = queue_create (workers * 16) in
  let domains =
    List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t ~stop q))
  in
  let overloaded =
    Http.serialize_response ~keep_alive:false
      (json_error 503 "server over capacity")
  in
  while not (Atomic.get stop) do
    (* select with a short timeout so termination signals are honoured
       within a bounded delay even on an idle listener *)
    match Unix.select [ sock ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept sock with
        | fd, _ ->
            if not (queue_try_push q fd) then begin
              Metrics.incr resp_5xx;
              (try write_all fd overloaded with Unix.Unix_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ()
            end
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Unix.close sock;
  List.iter (fun _ -> queue_push_sentinel q) domains;
  List.iter Domain.join domains;
  print_endline "fsdata: shutting down"
