module Shape = Fsdata_core.Shape
module Infer = Fsdata_core.Infer
module Par_infer = Fsdata_core.Par_infer
module Shape_parser = Fsdata_core.Shape_parser
module Shape_check = Fsdata_core.Shape_check
module Shape_compile = Fsdata_core.Shape_compile
module Preference = Fsdata_core.Preference
module Explain = Fsdata_core.Explain
module Diagnostic = Fsdata_data.Diagnostic
module Dv = Fsdata_data.Data_value
module Json = Fsdata_data.Json
module Xml = Fsdata_data.Xml
module Metrics = Fsdata_obs.Metrics
module Clock = Fsdata_obs.Clock
module Registry = Fsdata_registry.Registry
module Notify = Fsdata_evolve.Notify
module Evolve = Fsdata_evolve.Service
module Delivery = Fsdata_evolve.Delivery

(* --- instruments (docs/OBSERVABILITY.md, "serve.*") --- *)

let req_infer = Metrics.counter "serve.requests.infer"
let req_check = Metrics.counter "serve.requests.check"
let req_explain = Metrics.counter "serve.requests.explain"
let req_metrics = Metrics.counter "serve.requests.metrics"
let req_healthz = Metrics.counter "serve.requests.healthz"
let req_stream = Metrics.counter "serve.requests.stream"
let req_query = Metrics.counter "serve.requests.query"
let req_other = Metrics.counter "serve.requests.other"
let plan_cache_hits = Metrics.counter "serve.plan_cache.hits"
let plan_cache_misses = Metrics.counter "serve.plan_cache.misses"
let resp_2xx = Metrics.counter "serve.responses.2xx"
let resp_4xx = Metrics.counter "serve.responses.4xx"
let resp_5xx = Metrics.counter "serve.responses.5xx"
let cache_hits = Metrics.counter "serve.cache.hits"
let cache_misses = Metrics.counter "serve.cache.misses"
let cache_evictions = Metrics.counter "serve.cache.evictions"
let cache_invalidations = Metrics.counter "serve.cache.invalidations"
let http_errors = Metrics.counter "serve.http_errors"
let connections = Metrics.counter "serve.connections"
let latency_ms = Metrics.histogram "serve.latency_ms"
let inflight = Metrics.gauge "serve.inflight"
let shed_total = Metrics.counter "serve.shed_total"
let deadline_expired = Metrics.counter "serve.deadline_expired"
let stream_bodies = Metrics.counter "serve.stream.bodies"
let inflight_bytes_gauge = Metrics.gauge "serve.inflight_bytes"

(* watch outcomes (docs/OBSERVABILITY.md, "evolve.*"): the waiter-table
   gauge itself lives with the table in Fsdata_evolve.Notify *)
let watch_notified = Metrics.counter "evolve.watch.notified"
let watch_timeouts = Metrics.counter "evolve.watch.timeouts"
let watch_shed = Metrics.counter "evolve.watch.shed"

(* --- configuration and handler state --- *)

type config = {
  port : int;
  host : string;
  workers : int;
  timeout_ms : int;
  cache_entries : int;
  max_body : int;
  port_file : string option;
  queue_depth : int;
  max_inflight_bytes : int;
  stream_threshold : int;
  fault : Fault_net.t option;
  state_dir : string option;
  state_fsync : Fsdata_registry.Wal.fsync_policy;
  snapshot_every : int;
  history_limit : int;
  cache_ttl_ms : int;  (* <= 0: cached responses never expire *)
  max_waiters : int;  (* concurrent long-polls admitted before shedding *)
  hook_retry_ms : int;  (* webhook delivery first-retry backoff *)
}

let default_config =
  {
    port = 8080;
    host = "127.0.0.1";
    workers = 4;
    timeout_ms = 10_000;
    cache_entries = 64;
    max_body = 64 * 1024 * 1024;
    port_file = None;
    queue_depth = 0;
    max_inflight_bytes = 256 * 1024 * 1024;
    stream_threshold = 256 * 1024;
    fault = None;
    state_dir = None;
    state_fsync = `Always;
    snapshot_every = 512;
    history_limit = 256;
    cache_ttl_ms = 0;
    max_waiters = 64;
    hook_retry_ms = 50;
  }

(* A checked (and possibly plan-compiled) stream query, cached per
   (stream, version, query, engine): the version rides in the cache key,
   so a version bump makes every cached plan unreachable and the next
   query re-checks against the stream's current σ — a stale plan can
   never decode against an outgrown contract. Pushes additionally evict
   the stream's entries (bounding memory, not just reachability). *)
type plan_entry = {
  pe_checked : Fsdata_query.Check.checked;
  pe_fast : Fsdata_query.Eval_fast.plan option;  (* Some iff compiled=1 *)
}

type t = {
  cfg : config;
  cache : string Cache.t;
  compiled : Compile_cache.t;
  plans : plan_entry Cache.t;
  registry : Fsdata_registry.Registry.t;
  watch : Notify.t;
  draining : bool Atomic.t;
  inflight_bytes : int Atomic.t;
}

(* Compiled parsers are small (proportional to the shape) and hot shapes
   are few; a fixed capacity decoupled from the response cache is
   enough. *)
let compiled_cache_capacity = 32

(* Checked stream queries are small too (a shape plus closures); one
   slot per distinct (stream, version, query) in recent use. *)
let plan_cache_capacity = 128

let create ?(draining = Atomic.make false) cfg =
  let registry =
    Fsdata_registry.Registry.open_ ~fsync:cfg.state_fsync
      ~snapshot_every:cfg.snapshot_every ~history_limit:cfg.history_limit
      ~dir:cfg.state_dir ()
  in
  let watch = Notify.create ~capacity:cfg.max_waiters in
  (* every strict-growth bump wakes that stream's long-polls and the
     delivery worker's wildcard waiter; the listener fires outside the
     registry lock *)
  Registry.set_listener registry (fun st -> Notify.notify watch st.Registry.name);
  {
    cfg;
    cache = Cache.create ~capacity:cfg.cache_entries;
    compiled = Compile_cache.create ~capacity:compiled_cache_capacity;
    plans = Cache.create ~capacity:plan_cache_capacity;
    registry;
    watch;
    draining;
    inflight_bytes = Atomic.make 0;
  }

let cache_ttl t =
  if t.cfg.cache_ttl_ms <= 0 then None
  else Some (Int64.mul (Int64.of_int t.cfg.cache_ttl_ms) 1_000_000L)

let draining t = t.draining
let registry t = t.registry

(* --- the in-flight body budget (admission control) --- *)

(* Reservations are taken on the declared Content-Length before the
   first body byte is read, so the sum of bodies resident across all
   workers — buffered or streaming — never exceeds the budget. *)
let try_reserve t n =
  let rec go () =
    let cur = Atomic.get t.inflight_bytes in
    if cur + n > t.cfg.max_inflight_bytes then false
    else if Atomic.compare_and_set t.inflight_bytes cur (cur + n) then begin
      Metrics.gauge_add inflight_bytes_gauge (float_of_int n);
      true
    end
    else go ()
  in
  n <= 0 || go ()

let release t n =
  if n > 0 then begin
    ignore (Atomic.fetch_and_add t.inflight_bytes (-n));
    Metrics.gauge_add inflight_bytes_gauge (float_of_int (-n))
  end

(* Load balancers should back off before the budget is exhausted, not
   after: report overloaded once less than 1/8 of it remains. *)
let overloaded t =
  t.cfg.max_inflight_bytes - Atomic.get t.inflight_bytes
  < t.cfg.max_inflight_bytes / 8

(* --- response helpers --- *)

let json_body fields =
  Json.to_string ~indent:2 (Dv.Record (Dv.json_record_name, fields)) ^ "\n"

let json_error status msg =
  Http.response ~status (json_body [ ("error", Dv.String msg) ])

let json_ok ?headers fields = Http.response ?headers ~status:200 (json_body fields)

let method_not_allowed allow =
  Http.response ~status:405
    ~headers:[ ("allow", allow) ]
    (json_body [ ("error", Dv.String (Printf.sprintf "use %s" allow)) ])

let shape_string s = Fmt.str "%a" Shape.pp s

(* --- /infer --- *)

(* The interning table is process-global; keep it from growing without
   bound on a long-lived server. 200k nodes is far beyond any hot set —
   clearing only costs future sharing, never correctness. *)
let hcons_guard () = if Shape.hcons_size () > 200_000 then Shape.hcons_clear ()

let quarantine_entry (q : Infer.quarantined) =
  let d = q.Infer.q_diagnostic in
  Dv.Record
    ( Dv.json_record_name,
      [
        ("index", Dv.Int q.Infer.q_index);
        ("line", Dv.Int d.Diagnostic.line);
        ("column", Dv.Int d.Diagnostic.column);
        ("message", Dv.String d.Diagnostic.message);
      ] )

let render_report ~format (report : Infer.report) shape =
  json_body
    [
      ("format", Dv.String format);
      ("shape", Dv.String (shape_string shape));
      ("total", Dv.Int report.Infer.total);
      ("quarantined", Dv.Int (List.length report.Infer.quarantined));
      ("samples", Dv.List (List.map quarantine_entry report.Infer.quarantined));
    ]

(* Content negotiation: the Accept header picks the response
   representation — the full JSON report (default), the shape's JSON
   Schema export, or the bare shape in paper notation. The first
   supported media type listed wins (q-weights are ignored: our three
   representations are disjoint enough that preference order is the
   whole signal); a header naming only types we cannot produce is
   406. *)
let negotiate_accept req =
  match Http.header req "accept" with
  | None -> Ok `Report
  | Some v -> (
      let media_of item =
        let item =
          match String.index_opt item ';' with
          | None -> item
          | Some i -> String.sub item 0 i
        in
        String.lowercase_ascii (String.trim item)
      in
      let supported = function
        | "application/json" | "application/*" | "*/*" -> Some `Report
        | "application/schema+json" -> Some `Schema
        | "text/x-fsdata-shape" | "text/plain" | "text/*" -> Some `Paper
        | _ -> None
      in
      match
        List.find_map supported (List.map media_of (String.split_on_char ',' v))
      with
      | Some a -> Ok a
      | None ->
          Error
            (Printf.sprintf
               "cannot satisfy Accept: %s (supported: application/json, \
                application/schema+json, text/x-fsdata-shape)"
               v))

let accept_tag = function
  | `Report -> "report"
  | `Schema -> "schema"
  | `Paper -> "paper"

let accept_content_type = function
  | `Report -> "application/json"
  | `Schema -> "application/schema+json"
  | `Paper -> "text/plain; charset=utf-8"

let render_ok t ~format ~accept ~cache_header report =
  let shape = Shape.hcons report.Infer.shape in
  hcons_guard ();
  (* warm the compiled-parser cache: a client that infers a shape and
     then re-parses documents against it (POST /check?compiled=1) hits
     compiled code immediately *)
  if format = "json" then ignore (Compile_cache.get t.compiled shape);
  let body =
    match accept with
    | `Report -> render_report ~format report shape
    | `Schema -> Fsdata_codegen.Json_schema.to_string shape ^ "\n"
    | `Paper -> shape_string shape ^ "\n"
  in
  (body, cache_header)

let handle_infer t ~cancel ~rest req =
  if req.Http.meth <> "POST" then method_not_allowed "POST"
  else
    match negotiate_accept req with
    | Error m ->
        Http.response ~status:406 (json_body [ ("error", Dv.String m) ])
    | Ok accept -> (
    let content_type = accept_content_type accept in
    let format = Option.value ~default:"json" (Http.query_param req "format") in
    let jobs =
      match Http.query_param req "jobs" with
      | None -> Ok 1
      | Some s -> (
          match int_of_string_opt s with
          | Some n when n > 0 -> Ok n
          | Some 0 -> Ok (Par_infer.recommended_jobs ())
          | _ -> Error (Printf.sprintf "bad jobs value %S" s))
    in
    let budget =
      match Http.query_param req "max-errors" with
      | None -> Ok Diagnostic.Strict
      | Some s -> Diagnostic.budget_of_string s
    in
    match (format, jobs, budget) with
    | _, Error m, _ | _, _, Error m -> json_error 400 m
    | "json", Ok _, Ok budget when rest <> None -> (
        (* Streamed JSON: the body never materializes — fragments feed
           the recovering cursor as they arrive off the socket. No
           digest key exists without the bytes, so this path bypasses
           the response cache. *)
        Metrics.incr stream_bodies;
        let rest = Option.get rest in
        let feed push =
          let rec go () =
            match Http.read_body_chunk rest with
            | "" -> ()
            | s ->
                push s;
                go ()
          in
          go ()
        in
        match Infer.of_json_feed_tolerant ~cancel ~budget feed with
        | Error m -> json_error 422 m
        | Ok report ->
            let body, header =
              render_ok t ~format ~accept ~cache_header:"bypass" report
            in
            Http.response ~content_type
              ~headers:[ ("x-fsdata-cache", header) ]
              ~status:200 body)
    | ("json" | "csv" | "xml"), Ok jobs, Ok budget -> (
        (* Buffered (or non-JSON streamed: drained here, still under the
           reservation) — the digest-keyed cache path. The negotiated
           representation rides in the key: the same body under a
           different Accept is a different response. *)
        let body_text =
          match rest with
          | None -> req.Http.body
          | Some rest -> Http.read_body_all rest
        in
        let key =
          Digest.to_hex
            (Digest.string
               (String.concat "\x00"
                  [
                    format;
                    accept_tag accept;
                    string_of_int jobs;
                    Diagnostic.budget_to_string budget;
                    body_text;
                  ]))
        in
        match Cache.find t.cache key with
        | Some body ->
            Metrics.incr cache_hits;
            Http.response ~content_type
              ~headers:[ ("x-fsdata-cache", "hit") ]
              ~status:200 body
        | None -> (
            Metrics.incr cache_misses;
            let result =
              match format with
              | "json" ->
                  Par_infer.of_json_tolerant ~cancel ~jobs ~budget body_text
              | "xml" ->
                  Par_infer.of_xml_samples_tolerant ~cancel ~jobs ~budget
                    [ body_text ]
              | _ -> Infer.of_csv_tolerant ~cancel ~budget body_text
            in
            match result with
            | Error m -> json_error 422 m
            | Ok report ->
                let body, header =
                  render_ok t ~format ~accept ~cache_header:"miss" report
                in
                Metrics.add cache_evictions
                  (Cache.add ?ttl_ns:(cache_ttl t) t.cache key body);
                Http.response ~content_type
                  ~headers:[ ("x-fsdata-cache", header) ]
                  ~status:200 body))
    | fmt, _, _ ->
        json_error 400
          (Printf.sprintf "unsupported format %S (use json, csv or xml)" fmt))

(* --- /check and /explain --- *)

let mismatch_entry (m : Explain.mismatch) =
  Dv.Record
    ( Dv.json_record_name,
      [
        ("at", Dv.String m.Explain.at);
        ("input", Dv.String (shape_string m.Explain.input));
        ("expected", Dv.String (shape_string m.Explain.expected));
        ("reason", Dv.String m.Explain.reason);
      ] )

let handle_checkish t ~explain req =
  if req.Http.meth <> "POST" then method_not_allowed "POST"
  else
    let compiled_mode =
      match Http.query_param req "compiled" with
      | None | Some "0" -> Ok false
      | Some ("1" | "true") -> Ok true
      | Some v -> Error (Printf.sprintf "bad compiled value %S (use 0 or 1)" v)
    in
    match (Http.query_param req "shape", compiled_mode) with
    | _, Error m -> json_error 400 m
    | None, _ -> json_error 400 "missing required query parameter shape"
    | Some text, Ok compiled_mode -> (
        match Shape_parser.parse_result text with
        | Error m -> json_error 400 m
        | Ok shape -> (
            let format =
              Option.value ~default:"json" (Http.query_param req "format")
            in
            if compiled_mode && (explain || format <> "json") then
              json_error 400 "compiled=1 applies to /check with format json"
            else
              let doc =
                match format with
                | "json" -> Json.parse_result req.Http.body
                | "xml" ->
                    Result.map
                      (fun tree -> Xml.to_data tree)
                      (Xml.parse_result req.Http.body)
                | f ->
                    Error
                      (Printf.sprintf "unsupported format %S (use json or xml)"
                         f)
              in
              match doc with
              | Error m -> json_error 422 m
              | Ok doc ->
                  let mode = if format = "xml" then `Xml else `Practical in
                  let input_shape = Infer.shape_of_value ~mode doc in
                  let conforms () =
                    if compiled_mode then begin
                      (* the shape-compiled engine: hot shapes hit a cached
                         parser; conformance is judged on the normalized
                         document (docs/COMPILED_PARSERS.md) *)
                      let shape = Shape.hcons shape in
                      hcons_guard ();
                      let parser = Compile_cache.get t.compiled shape in
                      match Shape_compile.parse parser req.Http.body with
                      | Shape_compile.Direct _ -> true
                      | Shape_compile.Fallback _ -> false
                    end
                    else Shape_check.has_shape shape doc
                  in
                  json_ok
                    (if explain then
                       [
                         ("input_shape", Dv.String (shape_string input_shape));
                         ("shape", Dv.String (shape_string shape));
                         ( "mismatches",
                           Dv.List
                             (List.map mismatch_entry
                                (Explain.explain input_shape shape)) );
                       ]
                     else
                       [
                         ("has_shape", Dv.Bool (conforms ()));
                         ( "preferred",
                           Dv.Bool (Preference.is_preferred input_shape shape)
                         );
                         ("input_shape", Dv.String (shape_string input_shape));
                         ("shape", Dv.String (shape_string shape));
                       ])))

(* --- /streams/:name/* — the durable live shape registry --- *)

(* Rendered stream responses live in the same LRU as /infer responses,
   under a recognizable prefix so a push can invalidate exactly the
   entries it supersedes. *)
let stream_cache_prefix name = "stream:" ^ name ^ ":"

let invalidate_prefix t prefix =
  let n = Cache.remove_where t.cache (String.starts_with ~prefix) in
  Metrics.add cache_invalidations n;
  n

let stream_fields (st : Registry.stream) =
  [
    ("stream", Dv.String st.Registry.name);
    ("version", Dv.Int st.Registry.version);
    ("pushes", Dv.Int st.Registry.pushes);
    ("shape", Dv.String (shape_string st.Registry.shape));
  ]

(* POST /streams/:name/push — fold the body's inferred shape into the
   stream in O(merge). Never cached and never served from cache: the
   response is the registry's word on the new version. A storage fault
   (the WAL append raised) answers 503 — the push was not acknowledged
   and the in-memory shape is unchanged, so the client may simply
   retry. *)
let handle_stream_push t ~cancel name req =
  if req.Http.meth <> "POST" then method_not_allowed "POST"
  else
    let format = Option.value ~default:"json" (Http.query_param req "format") in
    let budget =
      match Http.query_param req "max-errors" with
      | None -> Ok Diagnostic.Strict
      | Some s -> Diagnostic.budget_of_string s
    in
    match (format, budget) with
    | _, Error m -> json_error 400 m
    | ("json" | "csv" | "xml"), Ok budget -> (
        let result =
          match format with
          | "json" -> Infer.of_json_tolerant ~cancel ~budget req.Http.body
          | "xml" ->
              Infer.of_xml_samples_tolerant ~cancel ~budget [ req.Http.body ]
          | _ -> Infer.of_csv_tolerant ~cancel ~budget req.Http.body
        in
        match result with
        | Error m -> json_error 422 m
        | Ok report -> (
            let delta = Shape.hcons report.Infer.shape in
            hcons_guard ();
            let clean =
              report.Infer.total - List.length report.Infer.quarantined
            in
            match
              Registry.push t.registry ~stream:name
                ~count:(max 1 clean) delta
            with
            | exception Unix.Unix_error (e, _, _) ->
                json_error 503
                  (Printf.sprintf "storage error, push not applied: %s"
                     (Unix.error_message e))
            | st ->
                ignore (invalidate_prefix t (stream_cache_prefix name));
                ignore
                  (Cache.remove_where t.plans
                     (String.starts_with ~prefix:(stream_cache_prefix name)));
                json_ok
                  ~headers:[ ("x-fsdata-cache", "bypass") ]
                  (stream_fields st
                  @ [
                      ("total", Dv.Int report.Infer.total);
                      ( "quarantined",
                        Dv.Int (List.length report.Infer.quarantined) );
                    ])))
    | fmt, _ ->
        json_error 400
          (Printf.sprintf "unsupported format %S (use json, csv or xml)" fmt)

(* GET /streams/:name/shape?format=paper|schema — the current shape, in
   the paper notation or as the exported JSON Schema. Responses are
   cached under the stream's prefix (with the configured TTL) and
   invalidated by the next applied push. *)
let handle_stream_shape t name req =
  if req.Http.meth <> "GET" then method_not_allowed "GET"
  else
    let format = Option.value ~default:"paper" (Http.query_param req "format") in
    match format with
    | "paper" | "schema" -> (
        match Registry.find t.registry name with
        | None -> json_error 404 (Printf.sprintf "no such stream %S" name)
        | Some st -> (
            let key = stream_cache_prefix name ^ "shape:" ^ format in
            match Cache.find t.cache key with
            | Some body ->
                Metrics.incr cache_hits;
                Http.response
                  ~headers:[ ("x-fsdata-cache", "hit") ]
                  ~status:200 body
            | None ->
                Metrics.incr cache_misses;
                let body =
                  if format = "schema" then
                    Fsdata_codegen.Json_schema.to_string st.Registry.shape
                    ^ "\n"
                  else json_body (stream_fields st)
                in
                Metrics.add cache_evictions
                  (Cache.add ?ttl_ns:(cache_ttl t) t.cache key body);
                Http.response
                  ~headers:[ ("x-fsdata-cache", "miss") ]
                  ~status:200 body))
    | fmt ->
        json_error 400
          (Printf.sprintf "unsupported format %S (use paper or schema)" fmt)

(* GET /streams/:name/history — one entry per version bump. *)
let handle_stream_history t name req =
  if req.Http.meth <> "GET" then method_not_allowed "GET"
  else
    match Registry.find t.registry name with
    | None -> json_error 404 (Printf.sprintf "no such stream %S" name)
    | Some st ->
        let entry (version, seq, shape) =
          Dv.Record
            ( Dv.json_record_name,
              [
                ("version", Dv.Int version);
                ("seq", Dv.Int seq);
                ("shape", Dv.String (shape_string shape));
              ] )
        in
        json_ok
          [
            ("stream", Dv.String st.Registry.name);
            ("version", Dv.Int st.Registry.version);
            ("history", Dv.List (List.map entry st.Registry.history));
          ]

(* GET /streams/:name/diff?from=A&to=B — what grew between two versions,
   rendered with Explain: the newer shape is checked against the older
   one, so each mismatch pinpoints a place where the stream outgrew the
   old contract. Defaults: [to] is the current version, [from] is the
   one before it. *)
let handle_stream_diff t name req =
  if req.Http.meth <> "GET" then method_not_allowed "GET"
  else
    match Registry.find t.registry name with
    | None -> json_error 404 (Printf.sprintf "no such stream %S" name)
    | Some st -> (
        let version_of param default =
          match Http.query_param req param with
          | None -> Ok default
          | Some s -> (
              match int_of_string_opt s with
              | Some v when v >= 0 -> Ok v
              | _ -> Error (Printf.sprintf "bad %s value %S" param s))
        in
        match version_of "to" st.Registry.version with
        | Error m -> json_error 400 m
        | Ok to_v -> (
            match version_of "from" (max 0 (to_v - 1)) with
            | Error m -> json_error 400 m
            | Ok from_v -> (
                match
                  ( Registry.version_shape st from_v,
                    Registry.version_shape st to_v )
                with
                | None, _ ->
                    json_error 404
                      (Printf.sprintf "stream %S never had version %d" name
                         from_v)
                | _, None ->
                    json_error 404
                      (Printf.sprintf "stream %S never had version %d" name
                         to_v)
                | Some from_shape, Some to_shape ->
                    json_ok
                      [
                        ("stream", Dv.String st.Registry.name);
                        ("from", Dv.Int from_v);
                        ("to", Dv.Int to_v);
                        ("from_shape", Dv.String (shape_string from_shape));
                        ("to_shape", Dv.String (shape_string to_shape));
                        ( "grew",
                          Dv.Bool (not (Shape.equal from_shape to_shape)) );
                        ( "changes",
                          Dv.List
                            (List.map mismatch_entry
                               (Explain.explain to_shape from_shape)) );
                      ])))

(* --- /streams/:name/{migrate,watch,hooks} — schema evolution --- *)

(* POST /streams/:name/migrate?since=V — rewrite the Foo program in the
   body from the provided type of version V to the current one
   (docs/EVOLUTION.md). Successes are cached under the stream's prefix
   with both versions in the key, so a push both invalidates them and
   makes them unreachable; errors are cheap and not cached. *)
let handle_stream_migrate t name req =
  if req.Http.meth <> "POST" then method_not_allowed "POST"
  else
    match Http.query_param req "since" with
    | None ->
        json_error 400
          "missing required query parameter since (the version the program \
           was compiled against)"
    | Some s -> (
        match int_of_string_opt s with
        | None -> json_error 400 (Printf.sprintf "bad since value %S" s)
        | Some since -> (
            let program = String.trim req.Http.body in
            if program = "" then
              json_error 400 "missing program: send it as the request body"
            else
              let current =
                match Registry.find t.registry name with
                | Some st -> st.Registry.version
                | None -> -1
              in
              let key =
                stream_cache_prefix name
                ^ Printf.sprintf "migrate:%d-%d:" since current
                ^ Digest.to_hex (Digest.string program)
              in
              match Cache.find t.cache key with
              | Some body ->
                  Metrics.incr cache_hits;
                  Http.response
                    ~headers:[ ("x-fsdata-cache", "hit") ]
                    ~status:200 body
              | None -> (
                  Metrics.incr cache_misses;
                  match
                    Evolve.migrate t.registry ~stream:name ~since ~program
                  with
                  | Error err ->
                      let status =
                        match err with
                        | Evolve.No_stream | Evolve.Unknown_version _ -> 404
                        | Evolve.Evicted _ -> 409
                        | Evolve.Parse_error _ -> 400
                        | Evolve.Ill_typed _ | Evolve.Unsupported _ -> 422
                        | Evolve.Internal _ -> 500
                      in
                      let extra =
                        match err with
                        | Evolve.Unknown_version (_, cur) ->
                            [ ("current_version", Dv.Int cur) ]
                        | Evolve.Evicted (_, oldest) ->
                            [ ("oldest_retained", Dv.Int oldest) ]
                        | _ -> []
                      in
                      Http.response ~status
                        (json_body
                           (("error", Dv.String (Fmt.str "%a" Evolve.pp_error err))
                           :: extra))
                  | Ok r ->
                      let body =
                        json_body
                          [
                            ("stream", Dv.String r.Evolve.stream);
                            ("from_version", Dv.Int r.Evolve.from_version);
                            ("to_version", Dv.Int r.Evolve.to_version);
                            ( "old_shape",
                              Dv.String (shape_string r.Evolve.old_shape) );
                            ( "new_shape",
                              Dv.String (shape_string r.Evolve.new_shape) );
                            ( "program",
                              Dv.String
                                (Fsdata_foo.Syntax.expr_to_string
                                   r.Evolve.program) );
                            ( "type",
                              Dv.String
                                (Fmt.str "%a" Fsdata_foo.Syntax.pp_ty
                                   r.Evolve.ty) );
                          ]
                      in
                      Metrics.add cache_evictions
                        (Cache.add ?ttl_ns:(cache_ttl t) t.cache key body);
                      Http.response
                        ~headers:[ ("x-fsdata-cache", "miss") ]
                        ~status:200 body)))

(* How long a watch may park when neither the deadline nor timeout-ms
   says otherwise (direct handler calls in tests; the live server's
   request deadline is always finite and tighter). *)
let watch_default_s = 25.

(* GET /streams/:name/watch?since=V[&timeout-ms=N] — long-poll until the
   stream's version exceeds V (default: its version at arrival, i.e.
   "the next bump"). 200 with the stream fields on a bump, 204 when the
   budget expires first, 503 when the waiter table is full. The wait is
   bounded by the request deadline less a write margin, so the answer
   always beats the socket timeout. *)
let handle_stream_watch t ~deadline name req =
  if req.Http.meth <> "GET" then method_not_allowed "GET"
  else
    match Registry.find t.registry name with
    | None -> json_error 404 (Printf.sprintf "no such stream %S" name)
    | Some st -> (
        let since =
          match Http.query_param req "since" with
          | None -> Ok st.Registry.version
          | Some s -> (
              match int_of_string_opt s with
              | Some v when v >= 0 -> Ok v
              | _ -> Error (Printf.sprintf "bad since value %S" s))
        in
        let timeout_param =
          match Http.query_param req "timeout-ms" with
          | None -> Ok None
          | Some s -> (
              match int_of_string_opt s with
              | Some ms when ms >= 0 -> Ok (Some ms)
              | _ -> Error (Printf.sprintf "bad timeout-ms value %S" s))
        in
        match (since, timeout_param) with
        | Error m, _ | _, Error m -> json_error 400 m
        | Ok since, Ok timeout_param -> (
            let poll () =
              match Registry.find t.registry name with
              | Some st when st.Registry.version > since -> Some st
              | _ -> None
            in
            let budget =
              let from_deadline =
                let r = Deadline.remaining_seconds deadline in
                if r = infinity then infinity else Float.max 0. (r -. 0.05)
              in
              let from_param =
                match timeout_param with
                | Some ms -> float_of_int ms /. 1e3
                | None -> watch_default_s
              in
              Float.min from_deadline from_param
            in
            match Notify.wait t.watch ~key:name ~seconds:budget ~poll with
            | `Ready st ->
                Metrics.incr watch_notified;
                json_ok
                  ~headers:[ ("x-fsdata-watch", "notified") ]
                  (stream_fields st)
            | `Timeout ->
                Metrics.incr watch_timeouts;
                Http.response ~status:204
                  ~headers:[ ("x-fsdata-watch", "timeout") ]
                  ""
            | `Capacity ->
                Metrics.incr watch_shed;
                Metrics.incr shed_total;
                Http.response ~status:503
                  ~headers:[ ("retry-after", "1") ]
                  (json_body
                     [ ("error", Dv.String "too many concurrent watchers") ])))

(* /streams/:name/hooks?url=U — webhook registration. POST registers
   (idempotently; the cursor starts at the current version, recorded
   durably in the WAL), DELETE removes, GET lists with delivery
   cursors. Registration is durable before it is acknowledged: a WAL
   append failure answers 503 and registers nothing. *)
let handle_stream_hooks t name req =
  let url_param () =
    match Http.query_param req "url" with
    | None -> Error "missing required query parameter url"
    | Some url when String.length url > 2048 -> Error "url too long"
    | Some url -> (
        match Fsdata_evolve.Client.parse_url url with
        | Ok _ -> Ok url
        | Error m -> Error m)
  in
  let hook_entry (h : Registry.hook) =
    Dv.Record
      ( Dv.json_record_name,
        [
          ("url", Dv.String h.Registry.url);
          ("delivered", Dv.Int h.Registry.delivered);
        ] )
  in
  let render (st : Registry.stream) =
    json_ok
      [
        ("stream", Dv.String st.Registry.name);
        ("version", Dv.Int st.Registry.version);
        ("hooks", Dv.List (List.map hook_entry st.Registry.hooks));
      ]
  in
  match req.Http.meth with
  | "GET" -> (
      match Registry.find t.registry name with
      | None -> json_error 404 (Printf.sprintf "no such stream %S" name)
      | Some st -> render st)
  | "POST" -> (
      match url_param () with
      | Error m -> json_error 400 m
      | Ok url -> (
          match Registry.add_hook t.registry ~stream:name ~url with
          | exception Unix.Unix_error (e, _, _) ->
              json_error 503
                (Printf.sprintf "storage error, hook not registered: %s"
                   (Unix.error_message e))
          | st -> render st))
  | "DELETE" -> (
      match url_param () with
      | Error m -> json_error 400 m
      | Ok url -> (
          match Registry.remove_hook t.registry ~stream:name ~url with
          | exception Unix.Unix_error (e, _, _) ->
              json_error 503
                (Printf.sprintf "storage error, hook not removed: %s"
                   (Unix.error_message e))
          | None -> json_error 404 (Printf.sprintf "no such stream %S" name)
          | Some st -> render st))
  | _ -> method_not_allowed "GET, POST, DELETE"

(* --- /query and /streams/:name/query — typed query pushdown --- *)

let default_query_limit = 1000

let query_args req =
  match Http.query_param req "q" with
  | None -> Error "missing required query parameter q"
  | Some qtext -> (
      let compiled =
        match Http.query_param req "compiled" with
        | None | Some "0" -> Ok false
        | Some "1" -> Ok true
        | Some v -> Error (Printf.sprintf "bad compiled value %S (use 0 or 1)" v)
      in
      let limit =
        match Http.query_param req "limit" with
        | None -> Ok default_query_limit
        | Some s -> (
            match int_of_string_opt s with
            | Some n when n > 0 -> Ok n
            | _ -> Error (Printf.sprintf "bad limit value %S" s))
      in
      match (compiled, limit) with
      | Error m, _ | _, Error m -> Error m
      | Ok compiled, Ok limit -> (
          match Fsdata_query.Parser.parse_result qtext with
          | Error m -> Error m
          | Ok query ->
              Ok (qtext, Fsdata_query.Syntax.ensure_limit limit query, compiled, limit)))

(* An ill-typed query is a client error: 400 with the Explain-style
   diagnostic split into fields the client can act on. *)
let query_rejection (e : Fsdata_query.Check.error) =
  Http.response ~status:400
    (json_body
       [
         ( "error",
           Dv.String
             (Fmt.str "query rejected: %a" Fsdata_query.Check.pp_error e) );
         ("at", Dv.String e.Fsdata_query.Check.at);
         ("expected", Dv.String e.Fsdata_query.Check.expected);
         ("found", Dv.String (shape_string e.Fsdata_query.Check.found));
       ])

let query_fields ~compiled (checked : Fsdata_query.Check.checked)
    (r : Fsdata_query.Value.result) =
  let st = r.Fsdata_query.Value.stats in
  [
    ("engine", Dv.String (if compiled then "eval_fast" else "eval"));
    ("output_shape", Dv.String (shape_string checked.Fsdata_query.Check.output));
    ( "rows",
      Dv.List
        (List.map Shape_compile.to_data r.Fsdata_query.Value.rows) );
    ("scanned", Dv.Int st.Fsdata_query.Value.scanned);
    ("matched", Dv.Int st.Fsdata_query.Value.matched);
    ("skipped", Dv.Int st.Fsdata_query.Value.skipped);
    ("malformed", Dv.Int st.Fsdata_query.Value.malformed);
  ]

(* POST /query?q=Q[&shape=S][&compiled=0|1][&limit=N] — run Q over the
   whitespace-separated JSON documents of the body. With [shape=] the
   query is checked against that σ and an ill-typed query is rejected
   before the corpus is even parsed; without it σ is first inferred
   from the body. Responses are digest-keyed in the same LRU as
   /infer. *)
let handle_query t ~cancel req =
  if req.Http.meth <> "POST" then method_not_allowed "POST"
  else
    match query_args req with
    | Error m -> json_error 400 m
    | Ok (qtext, query, compiled, limit) -> (
        let shape_param = Http.query_param req "shape" in
        let pre_checked =
          (* the explicit-σ path typechecks before touching the body *)
          match shape_param with
          | None -> Ok None
          | Some text -> (
              match Shape_parser.parse_result text with
              | Error m -> Error (json_error 400 m)
              | Ok sigma -> (
                  let sigma = Shape.hcons sigma in
                  hcons_guard ();
                  match Fsdata_query.Check.check sigma query with
                  | Error e -> Error (query_rejection e)
                  | Ok checked -> Ok (Some checked)))
        in
        match pre_checked with
        | Error resp -> resp
        | Ok pre_checked -> (
            let key =
              Digest.to_hex
                (Digest.string
                   (String.concat "\x00"
                      [
                        "query";
                        qtext;
                        string_of_bool compiled;
                        string_of_int limit;
                        Option.value ~default:"" shape_param;
                        req.Http.body;
                      ]))
            in
            match Cache.find t.cache key with
            | Some body ->
                Metrics.incr cache_hits;
                Http.response
                  ~headers:[ ("x-fsdata-cache", "hit") ]
                  ~status:200 body
            | None -> (
                Metrics.incr cache_misses;
                let checked =
                  match pre_checked with
                  | Some c -> Ok c
                  | None -> (
                      match Infer.of_json req.Http.body with
                      | Error m -> Error (json_error 422 m)
                      | Ok sigma -> (
                          let sigma = Shape.hcons sigma in
                          hcons_guard ();
                          match Fsdata_query.Check.check sigma query with
                          | Error e -> Error (query_rejection e)
                          | Ok checked -> Ok checked))
                in
                match checked with
                | Error resp -> resp
                | Ok checked ->
                    let result =
                      if compiled then
                        Fsdata_query.Eval_fast.eval ~cancel
                          (Fsdata_query.Eval_fast.compile checked)
                          req.Http.body
                      else Fsdata_query.Eval.eval ~cancel checked req.Http.body
                    in
                    let body = json_body (query_fields ~compiled checked result) in
                    Metrics.add cache_evictions
                      (Cache.add ?ttl_ns:(cache_ttl t) t.cache key body);
                    Http.response
                      ~headers:[ ("x-fsdata-cache", "miss") ]
                      ~status:200 body)))

(* POST /streams/:name/query?q=Q[&compiled=0|1][&limit=N] — run Q over
   the body, checked against the stream's CURRENT shape. Both caches
   carry the stream version in their key, so a version bump re-checks
   the query against the new σ automatically — a plan compiled against
   version N can never serve version N+1 — and a push additionally
   evicts the stream's plans and responses outright. *)
let handle_stream_query t ~cancel name req =
  if req.Http.meth <> "POST" then method_not_allowed "POST"
  else
    match Registry.find t.registry name with
    | None -> json_error 404 (Printf.sprintf "no such stream %S" name)
    | Some st -> (
        match query_args req with
        | Error m -> json_error 400 m
        | Ok (qtext, query, compiled, limit) -> (
            let version = st.Registry.version in
            let vtag =
              Printf.sprintf "v%d:%s:%d:" version
                (if compiled then "fast" else "eval")
                limit
            in
            let resp_key =
              stream_cache_prefix name ^ "query:" ^ vtag
              ^ Digest.to_hex (Digest.string (qtext ^ "\x00" ^ req.Http.body))
            in
            match Cache.find t.cache resp_key with
            | Some body ->
                Metrics.incr cache_hits;
                Http.response
                  ~headers:[ ("x-fsdata-cache", "hit") ]
                  ~status:200 body
            | None -> (
                Metrics.incr cache_misses;
                let plan_key = stream_cache_prefix name ^ "plan:" ^ vtag ^ qtext in
                let entry =
                  match Cache.find t.plans plan_key with
                  | Some e ->
                      Metrics.incr plan_cache_hits;
                      Ok e
                  | None -> (
                      Metrics.incr plan_cache_misses;
                      let sigma = Shape.hcons st.Registry.shape in
                      hcons_guard ();
                      match Fsdata_query.Check.check sigma query with
                      | Error e -> Error (query_rejection e)
                      | Ok checked ->
                          let entry =
                            {
                              pe_checked = checked;
                              pe_fast =
                                (if compiled then
                                   Some (Fsdata_query.Eval_fast.compile checked)
                                 else None);
                            }
                          in
                          ignore (Cache.add t.plans plan_key entry);
                          Ok entry)
                in
                match entry with
                | Error resp -> resp
                | Ok entry ->
                    let result =
                      match entry.pe_fast with
                      | Some plan ->
                          Fsdata_query.Eval_fast.eval ~cancel plan req.Http.body
                      | None ->
                          Fsdata_query.Eval.eval ~cancel entry.pe_checked
                            req.Http.body
                    in
                    let body =
                      json_body
                        (( "stream", Dv.String st.Registry.name )
                         :: ("version", Dv.Int version)
                         :: query_fields ~compiled entry.pe_checked result)
                    in
                    Metrics.add cache_evictions
                      (Cache.add ?ttl_ns:(cache_ttl t) t.cache resp_key body);
                    Http.response
                      ~headers:[ ("x-fsdata-cache", "miss") ]
                      ~status:200 body)))

(* POST /cache/invalidate[?key=K|stream=NAME] — drop cached responses:
   one exact key, one stream's entries, or (with no parameter)
   everything. *)
let handle_cache_invalidate t req =
  if req.Http.meth <> "POST" then method_not_allowed "POST"
  else
    let n =
      match (Http.query_param req "key", Http.query_param req "stream") with
      | Some key, _ -> if Cache.remove t.cache key then 1 else 0
      | None, Some stream ->
          ignore
            (Cache.remove_where t.plans
               (String.starts_with ~prefix:(stream_cache_prefix stream)));
          Cache.remove_where t.cache
            (String.starts_with ~prefix:(stream_cache_prefix stream))
      | None, None ->
          ignore (Cache.clear t.plans);
          Cache.clear t.cache
    in
    Metrics.add cache_invalidations n;
    json_ok [ ("invalidated", Dv.Int n) ]

(* --- routing --- *)

let handle_metrics req =
  if req.Http.meth <> "GET" then method_not_allowed "GET"
  else Http.response ~status:200 (Metrics.to_json ())

(* Health degrades in the order a load balancer should learn about it:
   draining (the process is on its way out) beats overloaded (back off
   and retry), beats ok. Both degraded states answer 503 so the check
   itself is the back-off signal. *)
let handle_healthz t req =
  if req.Http.meth <> "GET" then method_not_allowed "GET"
  else if Atomic.get t.draining then
    Http.response ~status:503 (json_body [ ("status", Dv.String "draining") ])
  else if overloaded t then
    Http.response ~status:503
      ~headers:[ ("retry-after", "1") ]
      (json_body [ ("status", Dv.String "overloaded") ])
  else json_ok [ ("status", Dv.String "ok") ]

(* "/streams/:name/:op" *)
let split_stream_path p =
  match String.split_on_char '/' p with
  | [ ""; "streams"; name; op ] when name <> "" -> Some (name, op)
  | _ -> None

let route t ~cancel ~deadline ~rest req =
  match req.Http.path with
  | "/infer" -> handle_infer t ~cancel ~rest req
  | p -> (
      (* only /infer streams; any other endpoint needs the whole body *)
      let req =
        match rest with
        | None -> req
        | Some rest -> { req with Http.body = Http.read_body_all rest }
      in
      match p with
      | "/check" -> handle_checkish t ~explain:false req
      | "/explain" -> handle_checkish t ~explain:true req
      | "/metrics" -> handle_metrics req
      | "/healthz" -> handle_healthz t req
      | "/cache/invalidate" -> handle_cache_invalidate t req
      | "/query" -> handle_query t ~cancel req
      | p -> (
          match split_stream_path p with
          | Some (name, "push") -> handle_stream_push t ~cancel name req
          | Some (name, "query") -> handle_stream_query t ~cancel name req
          | Some (name, "shape") -> handle_stream_shape t name req
          | Some (name, "history") -> handle_stream_history t name req
          | Some (name, "diff") -> handle_stream_diff t name req
          | Some (name, "migrate") -> handle_stream_migrate t name req
          | Some (name, "watch") -> handle_stream_watch t ~deadline name req
          | Some (name, "hooks") -> handle_stream_hooks t name req
          | _ -> json_error 404 (Printf.sprintf "no such endpoint %s" p)))

let request_counter p =
  if String.starts_with ~prefix:"/streams/" p then req_stream
  else
    match p with
    | "/infer" -> req_infer
    | "/query" -> req_query
    | "/check" -> req_check
    | "/explain" -> req_explain
    | "/metrics" -> req_metrics
    | "/healthz" -> req_healthz
    | _ -> req_other

let handle ?(cancel = Fsdata_data.Cancel.never) ?(deadline = Deadline.never)
    ?rest t req =
  Metrics.incr (request_counter req.Http.path);
  Metrics.gauge_add inflight 1.0;
  let t0 = Clock.now_ns () in
  let resp =
    match route t ~cancel ~deadline ~rest req with
    | resp -> resp
    | exception Fsdata_data.Cancel.Cancelled ->
        (* the deadline tripped mid-inference: the cooperative token cut
           the drivers off between documents *)
        Metrics.incr deadline_expired;
        json_error 504 "deadline exceeded while processing request"
    | exception Deadline.Expired ->
        (* the deadline tripped while pulling a streamed body *)
        Metrics.incr deadline_expired;
        json_error 408 "request timed out reading body"
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Metrics.incr deadline_expired;
        json_error 408 "request timed out reading body"
    | exception Http.Bad e ->
        (* a streamed body cut short: the peer closed mid-request *)
        json_error e.Http.status e.Http.reason
    | exception e -> json_error 500 (Printexc.to_string e)
  in
  Metrics.observe latency_ms
    (Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e6);
  Metrics.gauge_add inflight (-1.0);
  (Metrics.incr
     (if resp.Http.status < 300 then resp_2xx
      else if resp.Http.status < 500 then resp_4xx
      else resp_5xx));
  resp

(* --- connection handling --- *)

let write_all ?fault fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    match Fault_net.write_substring fault fd s !pos (len - !pos) with
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* The client may tighten (never extend) the server deadline for its
   request. *)
let deadline_of_header req =
  match Http.header req "x-fsdata-deadline-ms" with
  | None -> Ok Deadline.never
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some ms when ms > 0 -> Ok (Deadline.after_ms ms)
      | _ -> Error (Printf.sprintf "bad X-Fsdata-Deadline-Ms value %S" v))

(* One keep-alive connection, start to close. Any socket fault (peer
   reset, send timeout, expired deadline) just ends the connection — the
   server never dies for a client's sake. Anything else escaping is a
   crash for the supervisor. *)
let serve_connection t fd =
  Metrics.incr connections;
  let fault = t.cfg.fault in
  let tmo = float_of_int t.cfg.timeout_ms /. 1000. in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO tmo;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO tmo
   with Unix.Unix_error _ -> ());
  let limits = { Http.default_limits with Http.max_body = t.cfg.max_body } in
  let r = Http.reader_of_fd ?fault fd in
  (* Admission bookkeeping lives with the connection: the reserve hook
     records what it took so every exit path — response written, error,
     peer reset — gives the bytes back exactly once. *)
  let reserved = ref 0 in
  let give_back () =
    release t !reserved;
    reserved := 0
  in
  let reserve n =
    try_reserve t n
    && begin
         reserved := !reserved + n;
         true
       end
  in
  let send ~keep_alive resp =
    write_all ?fault fd (Http.serialize_response ~keep_alive resp)
  in
  let rec loop () =
    (* the deadline covers the whole request: header read, body read
       (buffered or streamed) and handler work *)
    Http.set_deadline r (Deadline.after_ms t.cfg.timeout_ms);
    let result =
      Http.read_request_stream ~limits ~reserve
        ~stream_over:t.cfg.stream_threshold r
    in
    match result with
    | Ok None -> give_back ()
    | Error e ->
        Metrics.incr http_errors;
        if e.Http.status = 503 then Metrics.incr shed_total;
        Metrics.incr (if e.Http.status < 500 then resp_4xx else resp_5xx);
        let headers =
          if e.Http.status = 503 then [ ("retry-after", "1") ] else []
        in
        send ~keep_alive:false
          (Http.response ~headers ~status:e.Http.status
             (json_body [ ("error", Dv.String e.Http.reason) ]));
        give_back ()
    | Ok (Some (req, rest)) -> (
        match deadline_of_header req with
        | Error m ->
            (* can't trust the connection state with the body possibly
               unread: answer and close *)
            Metrics.incr resp_4xx;
            send ~keep_alive:false (json_error 400 m);
            give_back ()
        | Ok header_deadline ->
            let deadline =
              Deadline.min
                (Deadline.after_ms t.cfg.timeout_ms)
                header_deadline
            in
            Http.set_deadline r deadline;
            let resp =
              handle ~cancel:(Deadline.cancel deadline) ~deadline ?rest t req
            in
            let body_consumed =
              match rest with
              | None -> true
              | Some rest -> Http.body_remaining rest = 0
            in
            (* during a drain, answer what's in hand but don't linger; a
               part-read streamed body leaves the wire unusable *)
            let ka =
              body_consumed
              && Http.keep_alive req
              && not (Atomic.get t.draining)
            in
            send ~keep_alive:ka resp;
            give_back ();
            if ka then loop ())
  in
  (try loop () with
  | Unix.Unix_error _ | Deadline.Expired -> ()
  | crash ->
      (* a genuine crash (or an injected worker kill): still release the
         budget and the fd, then let the supervisor see it *)
      give_back ();
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise crash);
  give_back ();
  try Unix.close fd with Unix.Unix_error _ -> ()

(* --- bounded connection queue --- *)

type conn_queue = {
  items : Unix.file_descr option Queue.t;  (* [None] = worker shutdown *)
  lock : Mutex.t;
  nonempty : Condition.t;
  capacity : int;
}

let queue_create capacity =
  {
    items = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    capacity;
  }

let queue_try_push q fd =
  Mutex.protect q.lock (fun () ->
      if Queue.length q.items >= q.capacity then false
      else begin
        Queue.add (Some fd) q.items;
        Condition.signal q.nonempty;
        true
      end)

let queue_push_sentinel q =
  Mutex.protect q.lock (fun () ->
      Queue.add None q.items;
      Condition.signal q.nonempty)

let queue_pop q =
  Mutex.lock q.lock;
  while Queue.is_empty q.items do
    Condition.wait q.nonempty q.lock
  done;
  let v = Queue.pop q.items in
  Mutex.unlock q.lock;
  v

let rec worker_loop t q =
  match queue_pop q with
  | None -> ()
  | Some fd ->
      serve_connection t fd;
      worker_loop t q

(* --- the accept loop --- *)

let run ?stop ?on_ready cfg =
  Metrics.set_enabled true;
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* In-process callers (tests) pass their own stop flag and keep the
     process's signal dispositions; standalone serving installs the
     drain-on-SIGINT/SIGTERM handlers. *)
  let stop =
    match stop with
    | Some stop -> stop
    | None ->
        let stop = Atomic.make false in
        let quit _ = Atomic.set stop true in
        Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
        stop
  in
  let quiet = on_ready <> None in
  let t = create ~draining:stop cfg in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
  Unix.listen sock 128;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  if not quiet then
    Printf.printf "fsdata: serving on http://%s:%d\n%!" cfg.host port;
  (match cfg.port_file with
  | Some path ->
      let oc = open_out path in
      output_string oc (string_of_int port);
      output_char oc '\n';
      close_out oc
  | None -> ());
  (* From here on the port file exists and the socket is live: whatever
     takes the accept loop down — drain or crash — must clean both up,
     or a restarted server would be found through a stale port file. *)
  let finally () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    (try Registry.close t.registry with Unix.Unix_error _ -> ());
    match cfg.port_file with
    | Some path -> ( try Sys.remove path with Sys_error _ -> ())
    | None -> ()
  in
  Fun.protect ~finally @@ fun () ->
  (match on_ready with Some f -> f port | None -> ());
  let workers = max 1 cfg.workers in
  let depth = if cfg.queue_depth > 0 then cfg.queue_depth else workers * 16 in
  let q = queue_create depth in
  let domains =
    List.init workers (fun i ->
        Domain.spawn (fun () ->
            (* crash-only: an exception out of a connection respawns the
               loop (backoff doubling from 10ms); the queue, the accept
               loop and the other workers never notice *)
            Supervisor.supervise
              ~name:(Printf.sprintf "worker-%d" i)
              ~should_restart:(fun () -> not (Atomic.get stop))
              (fun () -> worker_loop t q)))
  in
  (* the webhook delivery worker: its own domain, same crash-only
     supervision as the request workers *)
  let delivery_domain =
    Domain.spawn (fun () ->
        Supervisor.supervise ~name:"evolve-delivery"
          ~should_restart:(fun () -> not (Atomic.get stop))
          (fun () ->
            Delivery.loop
              ~cfg:
                {
                  Delivery.default_config with
                  Delivery.base_backoff_ms = max 1 cfg.hook_retry_ms;
                }
              ~notify:t.watch
              ~stop:(fun () -> Atomic.get stop)
              t.registry))
  in
  let overloaded =
    Http.serialize_response ~keep_alive:false
      (Http.response
         ~headers:[ ("retry-after", "1") ]
         ~status:503
         (json_body [ ("error", Dv.String "server over capacity") ]))
  in
  while not (Atomic.get stop) do
    (* select with a short timeout so termination signals are honoured
       within a bounded delay even on an idle listener *)
    match Unix.select [ sock ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept sock with
        | fd, _ ->
            if not (queue_try_push q fd) then begin
              Metrics.incr resp_5xx;
              Metrics.incr shed_total;
              (try write_all fd overloaded with Unix.Unix_error _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ()
            end
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  List.iter (fun _ -> queue_push_sentinel q) domains;
  List.iter Domain.join domains;
  Domain.join delivery_domain;
  if not quiet then print_endline "fsdata: shutting down"
