(** The [fsdata serve] inference service.

    A small HTTP/1.1 server (see {!Http}) exposing shape inference over
    the network, with a hash-consed hot-shape cache so repeated
    inference over the same corpus is a digest lookup instead of a
    parse-and-fold:

    - [POST /infer?format=json|csv|xml&jobs=N&max-errors=N|N%] — body is
      the sample corpus (for JSON, a whitespace-separated document
      stream); responds with the inferred shape in the paper notation
      plus the quarantine report, as JSON. Ingestion runs through the
      fault-tolerant drivers; without [max-errors] the budget is
      [Strict], exactly as on the command line.
    - [POST /check?shape=EXPR&format=json|xml] — body is one document;
      responds with the Figure 6 runtime shape test and the preference
      check against [EXPR].
    - [POST /explain?shape=EXPR&format=json|xml] — body is one document;
      responds with the list of preference violations ({!Fsdata_core.Explain}).
    - [GET /metrics] — the {!Fsdata_obs.Metrics} registry as flat JSON,
      including the [serve.*] instruments below.
    - [GET /healthz] — liveness.

    {2 The live shape registry}

    With [state_dir] set, streams survive crashes
    ({!Fsdata_registry.Registry}, docs/REGISTRY.md); without it the
    registry is in-memory with the same semantics.

    - [POST /streams/:name/push?format=json|csv|xml&max-errors=...] —
      body is a document batch; its inferred shape is folded into the
      named stream in O(merge) (the corpus is never re-inferred) and
      the response carries the merged shape and the stream version,
      which bumps only when the shape strictly grew. Never touches the
      response cache except to invalidate the stream's entries. A
      storage fault answers 503 and leaves the stream unchanged — the
      push was not acknowledged and is safe to retry.
    - [GET /streams/:name/shape?format=paper|schema] — the current
      shape, paper notation or JSON Schema; cached under the stream's
      prefix with the configured TTL.
    - [GET /streams/:name/history] — one entry per version bump.
    - [GET /streams/:name/diff?from=A&to=B] — the growth between two
      versions, rendered as {!Fsdata_core.Explain} mismatches.
    - [POST /cache/invalidate[?key=K|stream=NAME]] — drop one cached
      response, one stream's, or all of them.

    {2 Schema evolution (docs/EVOLUTION.md)}

    - [POST /streams/:name/migrate?since=V] — body is a Foo program
      compiled against version [V]; responds with the program rewritten
      to the stream's current provided type
      ({!Fsdata_evolve.Service}). [404] if the stream never had [V],
      [409] if [V] was evicted by [history_limit], [400] if the program
      does not parse, [422] if it does not check against [V]'s shape or
      falls outside the migratable fragment.
    - [GET /streams/:name/watch?since=V&timeout-ms=N] — long-poll until
      the version exceeds [V] (default: the version at arrival); [200]
      with the stream fields on a bump, [204] on timeout, [503] when
      more than [max_waiters] long-polls are already parked. Bounded by
      the request deadline.
    - [POST /streams/:name/hooks?url=U] — register a webhook
      (durable in the registry WAL before it is acknowledged; survives
      crash recovery). A supervised delivery worker POSTs one JSON
      notification per version bump, in order, retrying with
      exponential backoff from [hook_retry_ms], and advances the
      durable per-hook cursor only on a 2xx — at-least-once, never a
      skipped version. [GET] lists hooks with their cursors; [DELETE
      ?url=U] removes.

    [POST /infer] also negotiates its representation on the [Accept]
    header: [application/json] (the default report),
    [application/schema+json] (the shape's JSON Schema export) or
    [text/x-fsdata-shape] / [text/plain] (the bare paper notation);
    unsatisfiable headers answer [406].

    Results of [/infer] are cached in an LRU keyed by the digest of
    (format, jobs, budget, body); the inferred shape is interned with
    {!Fsdata_core.Shape.hcons} so hot shapes share one heap
    representation. Hits and misses are distinguished only by the
    [X-Fsdata-Cache] response header (and the [serve.cache.*] counters)
    — bodies are byte-identical either way.

    {2 Robustness}

    Every request runs under a {!Deadline}: [timeout_ms] from first
    byte, tightened by an [X-Fsdata-Deadline-Ms] request header. The
    deadline governs header and body reads (slowloris defense; expiry
    answers 408) and is threaded as a {!Fsdata_data.Cancel.t} through
    the tolerant ingestion drivers, so inference over an adversarial
    corpus stops between documents and answers 504. JSON [/infer]
    bodies above [stream_threshold] are never buffered — they stream
    off the socket into the recovering cursor (bypassing the response
    cache). Admission control reserves each declared [Content-Length]
    against [max_inflight_bytes] before reading it; over-budget and
    over-queue requests are shed with [503] + [Retry-After]. Worker
    domains are supervised ({!Supervisor}): an escaped exception is
    counted, logged with its backtrace, and the loop respawned with
    exponential backoff, so the accept loop survives any connection.
    [/healthz] degrades to [503 {"status":"draining"}] during shutdown
    and [503 {"status":"overloaded"}] when less than 1/8 of the body
    budget remains.

    {2 [serve.*] metrics}

    Counters
    [serve.requests.{infer,check,explain,metrics,healthz,stream,other}]
    (every [/streams/*] request counts under [stream]),
    [serve.responses.{2xx,4xx,5xx}],
    [serve.cache.{hits,misses,evictions,invalidations}],
    [serve.http_errors] (malformed requests answered from the parser),
    [serve.connections], [serve.shed_total] (503s from queue overflow or
    body-budget admission), [serve.deadline_expired] (408/504 cut-offs),
    [serve.stream.bodies] (bodies streamed, not buffered),
    [serve.worker.crashes] (supervisor respawns),
    [serve.faults.injected] (chaos shim, tests only); histogram
    [serve.latency_ms] (handler time per request); gauges
    [serve.inflight] (requests currently in a handler) and
    [serve.inflight_bytes] (reserved body bytes). Documented in
    [docs/OBSERVABILITY.md]. *)

type config = {
  port : int;  (** 0 picks an ephemeral port *)
  host : string;  (** address to bind, e.g. ["127.0.0.1"] *)
  workers : int;  (** worker domains handling connections *)
  timeout_ms : int;
      (** per-request deadline and per-connection receive/send timeout *)
  cache_entries : int;  (** LRU capacity; 0 disables the cache *)
  max_body : int;  (** request body limit in bytes *)
  port_file : string option;
      (** when set, the bound port is written here once listening —
          how the cram tests find an ephemeral port — and removed on
          every exit path, crash included *)
  queue_depth : int;
      (** bounded connection-queue capacity; [0] means [workers * 16] *)
  max_inflight_bytes : int;
      (** body bytes admitted across all workers before shedding *)
  stream_threshold : int;
      (** bodies with a declared length above this stream instead of
          buffering *)
  fault : Fault_net.t option;
      (** chaos-test shim over socket I/O; [None] in production *)
  state_dir : string option;
      (** registry state directory ([snapshot.bin] + [wal.log]); [None]
          keeps the registry in memory only *)
  state_fsync : Fsdata_registry.Wal.fsync_policy;
      (** [`Always] (the default): a push is durable before it is
          acknowledged *)
  snapshot_every : int;
      (** WAL records between snapshot compactions *)
  history_limit : int;
      (** version bumps each stream retains (oldest evicted), bounding
          history and snapshot growth *)
  cache_ttl_ms : int;
      (** time-to-live for cached responses; [<= 0] means entries never
          expire (eviction and invalidation still apply) *)
  max_waiters : int;
      (** concurrent [/watch] long-polls admitted before shedding 503
          (each parked watcher occupies a worker domain) *)
  hook_retry_ms : int;
      (** first-retry backoff for webhook delivery (doubles per failure
          up to the delivery worker's ceiling) *)
}

val default_config : config
(** Port 8080 on 127.0.0.1, 4 workers, 10s timeout, 64-entry cache,
    64 MiB bodies, no port file, [workers * 16] queue depth, 256 MiB
    in-flight body budget, 256 KiB stream threshold, no fault shim. *)

type t
(** Handler state: the response cache, the config, and the drain /
    admission state. Independent of any socket, so unit tests exercise
    {!handle} directly. *)

val create : ?draining:bool Atomic.t -> config -> t
(** [draining] (default: a fresh flag) is shared with {!run}'s stop
    flag so [/healthz] reports the drain. *)

val draining : t -> bool Atomic.t
(** The drain flag: set it and [/healthz] answers 503 draining. *)

val registry : t -> Fsdata_registry.Registry.t
(** The live shape registry behind [/streams/*] — exposed for tests. *)

val handle :
  ?cancel:Fsdata_data.Cancel.t ->
  ?deadline:Deadline.t ->
  ?rest:Http.body_rest ->
  t ->
  Http.request ->
  Http.response
(** Route and answer one parsed request. Total: handler exceptions
    become a 500 with an [{"error": ...}] body — except the deadline
    family, which maps to 504 ([Cancel.Cancelled] from a driver) or 408
    ([Deadline.Expired] / receive timeout while pulling [rest]). [rest]
    is a body still on the wire ({!Http.read_request_stream}): JSON
    [/infer] consumes it incrementally, everything else drains it
    first. [deadline] (default: never) bounds how long a [/watch]
    long-poll may park. *)

val run : ?stop:bool Atomic.t -> ?on_ready:(int -> unit) -> config -> unit
(** Bind, print ["fsdata: serving on http://HOST:PORT"] on stdout, and
    serve until SIGINT or SIGTERM. The accept loop hands connections to
    a fixed pool of supervised worker domains over a bounded queue
    (overflow is shed with [503] + [Retry-After] without queuing); each
    connection gets the configured timeouts, a per-request deadline and
    keep-alive semantics. On the first termination signal the listener
    closes, queued and in-flight requests drain (their responses are
    sent with [Connection: close]), the workers join, and
    ["fsdata: shutting down"] is printed. The port file, if any, is
    removed on every exit, including a crash of the accept loop.

    For in-process tests: [stop] supplies the drain flag (no signal
    handlers are installed), and [on_ready] receives the bound port
    once listening — and silences the stdout chatter. *)
