(** The [fsdata serve] inference service.

    A small HTTP/1.1 server (see {!Http}) exposing shape inference over
    the network, with a hash-consed hot-shape cache so repeated
    inference over the same corpus is a digest lookup instead of a
    parse-and-fold:

    - [POST /infer?format=json|csv|xml&jobs=N&max-errors=N|N%] — body is
      the sample corpus (for JSON, a whitespace-separated document
      stream); responds with the inferred shape in the paper notation
      plus the quarantine report, as JSON. Ingestion runs through the
      fault-tolerant drivers; without [max-errors] the budget is
      [Strict], exactly as on the command line.
    - [POST /check?shape=EXPR&format=json|xml] — body is one document;
      responds with the Figure 6 runtime shape test and the preference
      check against [EXPR].
    - [POST /explain?shape=EXPR&format=json|xml] — body is one document;
      responds with the list of preference violations ({!Fsdata_core.Explain}).
    - [GET /metrics] — the {!Fsdata_obs.Metrics} registry as flat JSON,
      including the [serve.*] instruments below.
    - [GET /healthz] — liveness.

    Results of [/infer] are cached in an LRU keyed by the digest of
    (format, jobs, budget, body); the inferred shape is interned with
    {!Fsdata_core.Shape.hcons} so hot shapes share one heap
    representation. Hits and misses are distinguished only by the
    [X-Fsdata-Cache] response header (and the [serve.cache.*] counters)
    — bodies are byte-identical either way.

    {2 [serve.*] metrics}

    Counters [serve.requests.{infer,check,explain,metrics,healthz,other}],
    [serve.responses.{2xx,4xx,5xx}], [serve.cache.{hits,misses,evictions}],
    [serve.http_errors] (malformed requests answered from the parser),
    [serve.connections]; histogram [serve.latency_ms] (handler time per
    request); gauge [serve.inflight] (requests currently in a handler).
    Documented in [docs/OBSERVABILITY.md]. *)

type config = {
  port : int;  (** 0 picks an ephemeral port *)
  host : string;  (** address to bind, e.g. ["127.0.0.1"] *)
  workers : int;  (** worker domains handling connections *)
  timeout_ms : int;  (** per-connection receive/send timeout *)
  cache_entries : int;  (** LRU capacity; 0 disables the cache *)
  max_body : int;  (** request body limit in bytes *)
  port_file : string option;
      (** when set, the bound port is written here once listening —
          how the cram tests find an ephemeral port *)
}

val default_config : config
(** Port 8080 on 127.0.0.1, 4 workers, 10s timeout, 64-entry cache,
    64 MiB bodies, no port file. *)

type t
(** Handler state: the response cache plus the config. Independent of
    any socket, so unit tests exercise {!handle} directly. *)

val create : config -> t

val handle : t -> Http.request -> Http.response
(** Route and answer one parsed request. Total: handler exceptions
    become a 500 with an [{"error": ...}] body. *)

val run : config -> unit
(** Bind, print ["fsdata: serving on http://HOST:PORT"] on stdout, and
    serve until SIGINT or SIGTERM. The accept loop hands connections to
    a fixed pool of worker domains over a bounded queue (overflow is
    answered [503] without queuing); each connection gets the
    configured receive/send timeouts and keep-alive semantics. On the
    first termination signal the listener closes, queued and in-flight
    requests drain (their responses are sent with [Connection: close]),
    the workers join, and ["fsdata: shutting down"] is printed. *)
