module Metrics = Fsdata_obs.Metrics
module Clock = Fsdata_obs.Clock

let m_crashes = Metrics.counter "serve.worker.crashes"

type crash = { name : string; message : string; backtrace : string }

(* Last crash seen, for tests and post-mortem; mutex rather than Atomic
   because several supervised domains may crash at once. *)
let last = ref None
let last_lock = Mutex.create ()
let last_crash () = Mutex.protect last_lock (fun () -> !last)

let record ~name exn bt =
  let c =
    { name; message = Printexc.to_string exn; backtrace = Printexc.raw_backtrace_to_string bt }
  in
  Mutex.protect last_lock (fun () -> last := Some c);
  c

let default_log c =
  Printf.eprintf "fsdata: %s crashed: %s\n%s%!" c.name c.message c.backtrace

(* A run that survives this long is considered healthy: the next crash
   starts the backoff ladder from the bottom again, so a worker that
   crashes once an hour never climbs to the max sleep. *)
let healthy_run_ns = 1_000_000_000L

let supervise ~name ?(base_backoff_ms = 10) ?(max_backoff_ms = 1000)
    ?(healthy_after_ns = healthy_run_ns) ?on_restart ?(log = default_log)
    ~should_restart f =
  let rec go backoff_ms =
    let t0 = Clock.now_ns () in
    match f () with
    | () -> ()
    | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        (* the healthy-run clock stops at the crash, before the backoff
           sleep — otherwise a max-length sleep would itself count as a
           healthy run and reset the ladder for a crash-looping worker *)
        let ran = Int64.sub (Clock.now_ns ()) t0 in
        Metrics.incr m_crashes;
        log (record ~name exn bt);
        if should_restart () then begin
          (match on_restart with Some f -> f backoff_ms | None -> ());
          Unix.sleepf (float_of_int backoff_ms /. 1000.);
          let next =
            if Int64.compare ran healthy_after_ns >= 0 then base_backoff_ms
            else Stdlib.min max_backoff_ms (backoff_ms * 2)
          in
          go next
        end
  in
  go base_backoff_ms
