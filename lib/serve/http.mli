(** A hand-rolled HTTP/1.1 subset over [Unix], sufficient for the
    inference service and free of new dependencies (the container ships
    no http libraries — ROADMAP "HTTP serving mode").

    Supported: request parsing with size limits, percent-decoded paths
    and query strings, [Content-Length] bodies, keep-alive (HTTP/1.1
    default, HTTP/1.0 opt-in) and [Connection: close]. Out of scope, and
    rejected with the proper status: [Transfer-Encoding] bodies (501)
    and unknown protocol versions (505).

    The parser reads from a {!reader}, an abstraction over a buffered
    byte source, so the unit tests drive it with in-memory strings and
    the server with sockets — same code path either way. *)

(** {1 Readers} *)

type reader

val reader_of_fd : ?fault:Fault_net.t -> Unix.file_descr -> reader
(** Buffered reads from a socket or file. A receive timeout configured
    on the fd ([SO_RCVTIMEO]) surfaces as [Unix_error (EAGAIN | EWOULDBLOCK)]
    from the underlying [read]; {!read_request} maps it to 408 or to a
    clean end-of-stream depending on whether a request was underway.
    [EINTR] is retried transparently. With [fault], all reads go
    through the {!Fault_net} shim (chaos tests only). *)

val set_deadline : reader -> Deadline.t -> unit
(** Arm the reader with an absolute deadline: every subsequent refill
    first checks it (raising {!Deadline.Expired} once past — mapped by
    {!read_request} like a receive timeout) and then shrinks the fd's
    [SO_RCVTIMEO] to the time remaining, so a peer trickling bytes
    cannot extend a request past its deadline. Readers start with
    {!Deadline.never}. *)

val reader_of_string : string -> reader
(** The whole stream up front; used by the parser unit tests and capable
    of holding several pipelined requests. *)

(** {1 Requests} *)

type request = {
  meth : string;  (** verb as sent, e.g. ["GET"] — never decoded *)
  path : string;  (** percent-decoded path component of the target *)
  query : (string * string) list;
      (** decoded query parameters in order of appearance *)
  version : [ `Http_1_0 | `Http_1_1 ];
  headers : (string * string) list;
      (** names lowercased, values trimmed, in order of appearance *)
  body : string;
}

type limits = {
  max_request_line : int;  (** bytes, request line incl. target *)
  max_header_count : int;
  max_header_line : int;  (** bytes per header line *)
  max_body : int;  (** bytes of declared [Content-Length] *)
}

val default_limits : limits
(** 8 KiB request line, 64 headers of 8 KiB each, 64 MiB body. *)

type error = { status : int; reason : string }
(** A request that could not be parsed, with the response status that
    should be sent before closing the connection (400, 408, 413, 431,
    501, 505 — or 503 when admission control refused the body). *)

exception Bad of error
(** How parse failures travel inside the reader functions.
    {!read_request} and {!read_request_stream} catch it and return it
    as [Error]; it escapes only from the {!body_rest} readers, whose
    caller (the request handler) is past the parse phase. *)

val read_request : ?limits:limits -> reader -> (request option, error) result
(** Read and parse one request. [Ok None] means the peer closed (or went
    idle past the receive timeout) {e between} requests — the normal end
    of a keep-alive connection, nothing to respond to. [Error _] means
    the connection is in an unknown state: respond with [error.status]
    and close. *)

type body_rest
(** A request body deliberately left on the wire by
    {!read_request_stream}: the declared bytes are still unread. The
    connection cannot serve another request until it is consumed. *)

val read_request_stream :
  ?limits:limits ->
  ?reserve:(int -> bool) ->
  ?stream_over:int ->
  reader ->
  ((request * body_rest option) option, error) result
(** {!read_request} generalized for the server: [reserve], when given,
    is called with the declared [Content-Length] {e before any body
    byte is read} — returning [false] rejects the request with 503
    ("in-flight body budget exhausted"), the server's admission
    control. Bodies larger than [stream_over] (default [max_int]) are
    not buffered: the request comes back with [body = ""] and a
    {!body_rest} to pull incrementally. A well-formed
    [X-Fsdata-Deadline-Ms] header tightens the reader deadline before
    the body is read, so a client budget cuts slow body bytes too;
    malformed values are left in the request for the server to
    reject. *)

val body_remaining : body_rest -> int
(** Declared body bytes not yet consumed. *)

val read_body_chunk : body_rest -> string
(** The next chunk of the body, at most one buffered read's worth;
    [""] once the declared length is consumed. Raises like the header
    reads: [Bad] 400 if the peer closes mid-body, [Unix_error] on
    receive timeout, {!Deadline.Expired} past the reader deadline. *)

val read_body_all : body_rest -> string
(** Drain the rest of the body into one string. *)

val header : request -> string -> string option
(** Case-insensitive header lookup (first occurrence). *)

val query_param : request -> string -> string option
(** First query parameter with the given name. *)

val keep_alive : request -> bool
(** Whether the protocol expects the connection to stay open after the
    response: HTTP/1.1 unless [Connection: close], HTTP/1.0 only with
    [Connection: keep-alive]. *)

val percent_decode : string -> string
(** Decode [%XX] escapes and [+] as space; malformed escapes are kept
    verbatim. *)

(** {1 Responses} *)

type response = {
  status : int;
  resp_headers : (string * string) list;  (** extra headers *)
  content_type : string;
  resp_body : string;
}

val response :
  ?headers:(string * string) list ->
  ?content_type:string ->
  status:int ->
  string ->
  response
(** Default content type is [application/json]. *)

val status_reason : int -> string
(** The standard reason phrase, e.g. [status_reason 404 = "Not Found"]. *)

val serialize_response : keep_alive:bool -> response -> string
(** The response as wire bytes: status line, [content-type],
    [content-length], [connection], the extra headers, and the body.
    No [Date] header — responses are deterministic for the cram tests. *)
