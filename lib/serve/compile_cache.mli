(** Cache of shape-compiled parsers for the serving layer.

    Compiling a parser ({!Fsdata_core.Shape_compile.compile}) costs one
    traversal of the shape; a server answering repeated [/check] requests
    against the same hot shapes should pay it once. Keys are {e interned}
    shapes ({!Fsdata_core.Shape.hcons}), so the lookup is a physical
    -equality scan of a small MRU list — no hashing of shape trees on the
    request path. Safe for concurrent use from worker domains (one lock;
    the critical section is the scan).

    Instrumented as [compile.cache.hits] / [compile.cache.misses] /
    [compile.cache.evictions] (docs/OBSERVABILITY.md). *)

type t

val create : capacity:int -> t
(** [capacity <= 0] disables caching: {!get} always compiles. *)

val get : t -> Fsdata_core.Shape.t -> Fsdata_core.Shape_compile.compiled
(** [get t shape] returns the cached parser for [shape] — which must be
    an {!Fsdata_core.Shape.hcons} result for hits to occur — compiling
    and inserting it (evicting the least recently used entry beyond
    capacity) on a miss. *)

val length : t -> int
