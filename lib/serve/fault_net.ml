let m_injected = Fsdata_obs.Metrics.counter "serve.faults.injected"

exception Worker_killed

type fault = Error of Unix.error | Kill | Delay of float

type t = {
  lock : Mutex.t;
  mutable max_read : int;
  mutable max_write : int;
  mutable read_faults : fault list;
  mutable write_faults : fault list;
  mutable injected : int;
}

let create () =
  {
    lock = Mutex.create ();
    max_read = max_int;
    max_write = max_int;
    read_faults = [];
    write_faults = [];
    injected = 0;
  }

let set_max_read t n =
  Mutex.protect t.lock (fun () -> t.max_read <- (if n < 1 then max_int else n))

let set_max_write t n =
  Mutex.protect t.lock (fun () -> t.max_write <- (if n < 1 then max_int else n))

let inject_read t faults =
  Mutex.protect t.lock (fun () -> t.read_faults <- t.read_faults @ faults)

let inject_write t faults =
  Mutex.protect t.lock (fun () -> t.write_faults <- t.write_faults @ faults)

let injected t = Mutex.protect t.lock (fun () -> t.injected)

(* Pop the next queued fault, if any, and account for it. *)
let next_fault t pick set =
  Mutex.protect t.lock (fun () ->
      match pick t with
      | [] -> None
      | f :: rest ->
          set t rest;
          t.injected <- t.injected + 1;
          Fsdata_obs.Metrics.incr m_injected;
          Some f)

let rec fire t fault op =
  match fault with
  | None -> op ()
  | Some (Error e) -> raise (Unix.Unix_error (e, "fault_net", ""))
  | Some Kill -> raise Worker_killed
  | Some (Delay s) ->
      Unix.sleepf s;
      fire t None op

let read t fd buf pos len =
  match t with
  | None -> Unix.read fd buf pos len
  | Some t ->
      let fault =
        next_fault t
          (fun t -> t.read_faults)
          (fun t rest -> t.read_faults <- rest)
      in
      fire t fault (fun () ->
          Unix.read fd buf pos (Stdlib.min len (Mutex.protect t.lock (fun () -> t.max_read))))

let write_substring t fd s pos len =
  match t with
  | None -> Unix.write_substring fd s pos len
  | Some t ->
      let fault =
        next_fault t
          (fun t -> t.write_faults)
          (fun t rest -> t.write_faults <- rest)
      in
      fire t fault (fun () ->
          Unix.write_substring fd s pos
            (Stdlib.min len (Mutex.protect t.lock (fun () -> t.max_write))))
