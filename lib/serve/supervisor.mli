(** Crash-only supervision for worker domains.

    The serve worker loops are written so that expected faults (peer
    resets, timeouts) never escape — anything that does escape is a
    bug or an injected crash, and the server's answer is the crash-only
    one: count it ([serve.worker.crashes]), log the backtrace, and
    respawn the loop after an exponential backoff, so the accept loop
    and the remaining workers keep serving throughout. *)

type crash = {
  name : string;  (** the supervised loop, e.g. ["worker-3"] *)
  message : string;  (** [Printexc.to_string] of the escaped exception *)
  backtrace : string;
}

val last_crash : unit -> crash option
(** The most recent crash seen by any supervisor in this process;
    [None] if nothing has crashed. Used by the chaos tests. *)

val supervise :
  name:string ->
  ?base_backoff_ms:int ->
  ?max_backoff_ms:int ->
  ?healthy_after_ns:int64 ->
  ?on_restart:(int -> unit) ->
  ?log:(crash -> unit) ->
  should_restart:(unit -> bool) ->
  (unit -> unit) ->
  unit
(** [supervise ~name ~should_restart f] runs [f ()]; a normal return
    ends supervision. An escaped exception is recorded (counter, crash
    log — default to stderr) and, when [should_restart ()] holds, [f]
    is restarted after a backoff that doubles from [base_backoff_ms]
    (default 10) up to [max_backoff_ms] (default 1000) on each crash in
    quick succession, resetting once a {e run} — crash to crash, the
    backoff sleep excluded — survives [healthy_after_ns] (default 1s).
    [on_restart] observes each backoff (in ms) just before its sleep;
    the tests use it to pin the ladder. The exception itself never
    propagates: supervision is the last line of defense for the
    domain. *)
