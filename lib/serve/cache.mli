(** A mutex-protected LRU map from string keys to values, used by the
    server to keep rendered [/infer] responses for hot corpora (keyed by
    corpus digest — see [docs/SERVING.md] for the cache semantics). *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity <= 0] creates a disabled cache: {!find} always misses and
    {!add} is a no-op. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** A hit marks the entry most-recently used. *)

val add : 'a t -> string -> 'a -> int
(** Insert (or refresh) a binding, evicting least-recently-used entries
    when over capacity; returns how many entries were evicted (0 or 1). *)
