(** A mutex-protected LRU map from string keys to values, used by the
    server to keep rendered [/infer] responses for hot corpora (keyed by
    corpus digest — see [docs/SERVING.md] for the cache semantics).

    Entries may carry a time-to-live: an expired entry behaves exactly
    like a miss (and is dropped on the way out), so a stale response is
    never served even if nothing evicted it. Explicit invalidation
    ({!remove}, {!remove_where}, {!clear}) backs the server's
    [POST /cache/invalidate] endpoint and the registry's
    push-supersedes-cache rule. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity <= 0] creates a disabled cache: {!find} always misses and
    {!add} is a no-op. *)

val capacity : 'a t -> int
val length : 'a t -> int

val find : 'a t -> string -> 'a option
(** A hit marks the entry most-recently used. An entry past its TTL is
    removed and reported as a miss. *)

val add : 'a t -> ?ttl_ns:int64 -> string -> 'a -> int
(** Insert (or refresh) a binding, evicting least-recently-used entries
    when over capacity; returns how many entries were evicted (0 or 1).
    [ttl_ns], when given, bounds the entry's life from now; without it
    the entry lives until evicted or invalidated. *)

val remove : 'a t -> string -> bool
(** Drop one binding; [true] if it was present (expired or not). *)

val remove_where : 'a t -> (string -> bool) -> int
(** Drop every binding whose key satisfies the predicate; returns how
    many were dropped. The predicate runs under the cache lock — keep
    it pure and fast (the server uses prefix tests). *)

val clear : 'a t -> int
(** Drop everything; returns how many entries were dropped. *)
