(** Per-request deadlines on the monotonic clock.

    A deadline is an absolute instant; everything downstream of a
    request derives its time budget from one value, so header reads,
    body reads and inference all run out together no matter how the
    work is interleaved (the slowloris defense: trickling bytes resets
    a socket timeout but never moves the deadline). The reader polls
    it in {!Http} via {!check}/{!Expired}; the ingestion drivers poll
    it as a {!Fsdata_data.Cancel.t} via {!cancel}. *)

type t

exception Expired
(** Raised by {!check} — and by reader refills in {!Http} — once the
    deadline has passed. The server maps it to 408. *)

val never : t
(** No deadline; {!expired} is always [false]. *)

val after_ms : int -> t
(** [after_ms ms] is the instant [ms] milliseconds from now
    ([Fsdata_obs.Clock.now_ns]); already expired when [ms <= 0]. *)

val min : t -> t -> t
(** The earlier of two deadlines (e.g. the server timeout and a
    client-supplied [X-Fsdata-Deadline-Ms]). *)

val expired : t -> bool

val remaining_seconds : t -> float
(** Seconds left, [0.] once expired, [infinity] for {!never}. Suitable
    for [SO_RCVTIMEO]. *)

val check : t -> unit
(** @raise Expired once the deadline has passed. *)

val cancel : t -> Fsdata_data.Cancel.t
(** The deadline as a cooperative cancellation token for the tolerant
    ingestion drivers and {!Fsdata_core.Shape_compile.parse_corpus}. *)
