module Clock = Fsdata_obs.Clock

type t = int64 (* absolute monotonic ns; max_int means no deadline *)

exception Expired

let never : t = Int64.max_int

let after_ms ms =
  if ms <= 0 then Clock.now_ns ()
  else Int64.add (Clock.now_ns ()) (Int64.mul (Int64.of_int ms) 1_000_000L)

let min a b : t = if Int64.compare a b <= 0 then a else b
let expired (d : t) = d <> never && Int64.compare (Clock.now_ns ()) d >= 0

let remaining_seconds (d : t) =
  if d = never then infinity
  else
    let ns = Int64.sub d (Clock.now_ns ()) in
    if Int64.compare ns 0L <= 0 then 0. else Int64.to_float ns /. 1e9

let check d = if expired d then raise Expired

let cancel (d : t) : Fsdata_data.Cancel.t =
 fun () -> expired d
