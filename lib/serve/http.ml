(* Hand-rolled HTTP/1.1 subset; see http.mli for scope. *)

(* ----- readers ----- *)

(* A reader holds the unconsumed tail of the stream plus a refill
   function; [""] from refill means end of stream. Reads from sockets
   propagate [Unix_error] (in particular EAGAIN/EWOULDBLOCK when a
   receive timeout is set on the fd) out of [refill]; an expired
   deadline surfaces as [Deadline.Expired]. [refill] is a mutable field
   only to tie the recursive knot with the deadline the reader itself
   carries. *)
type reader = {
  mutable refill : unit -> string;
  mutable pending : string;
  mutable pos : int;  (* consumed prefix of [pending] *)
  mutable deadline : Deadline.t;
}

let set_deadline r d = r.deadline <- d

let reader_of_fd ?fault fd =
  let buf = Bytes.create 8192 in
  let r = { refill = (fun () -> ""); pending = ""; pos = 0; deadline = Deadline.never } in
  let rec refill () =
    (* The deadline is absolute, so a peer trickling one byte per
       receive-timeout window (slowloris) still runs out of time: each
       refill both checks expiry and shrinks the socket timeout to the
       time actually left. *)
    Deadline.check r.deadline;
    (match Deadline.remaining_seconds r.deadline with
    | s when s = infinity -> ()
    | s -> (
        try Unix.setsockopt_float fd Unix.SO_RCVTIMEO (Float.max 0.001 s)
        with Unix.Unix_error _ | Invalid_argument _ -> ()));
    match Fault_net.read fault fd buf 0 (Bytes.length buf) with
    | 0 -> ""
    | n -> Bytes.sub_string buf 0 n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> refill ()
  in
  r.refill <- refill;
  r

let reader_of_string s =
  { refill = (fun () -> ""); pending = s; pos = 0; deadline = Deadline.never }

let available r = String.length r.pending - r.pos

(* Append one refill's worth of bytes; false at end of stream. *)
let grow r =
  match r.refill () with
  | "" -> false
  | more ->
      r.pending <-
        (if r.pos = 0 then r.pending ^ more
         else String.sub r.pending r.pos (available r) ^ more);
      if r.pos <> 0 then r.pos <- 0;
      true

(* ----- request parsing ----- *)

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  version : [ `Http_1_0 | `Http_1_1 ];
  headers : (string * string) list;
  body : string;
}

type limits = {
  max_request_line : int;
  max_header_count : int;
  max_header_line : int;
  max_body : int;
}

let default_limits =
  {
    max_request_line = 8 * 1024;
    max_header_count = 64;
    max_header_line = 8 * 1024;
    max_body = 64 * 1024 * 1024;
  }

type error = { status : int; reason : string }

exception Bad of error

let bad status reason = raise (Bad { status; reason })

(* Read up to and including "\n" (tolerating bare LF as well as CRLF,
   like most servers); the returned line has the terminator stripped.
   [None] at end of stream with nothing buffered. *)
let read_line ~max_len r =
  let find_nl from = String.index_from_opt r.pending from '\n' in
  let rec go scanned =
    match find_nl (r.pos + scanned) with
    | Some i ->
        if i - r.pos > max_len then bad 431 "header or request line too long";
        let stop = if i > r.pos && r.pending.[i - 1] = '\r' then i - 1 else i in
        let line = String.sub r.pending r.pos (stop - r.pos) in
        r.pos <- i + 1;
        Some line
    | None ->
        if available r > max_len then bad 431 "header or request line too long";
        let before = available r in
        if grow r then go before
        else if available r = 0 then None
        else bad 400 "truncated request: missing line terminator"
  in
  go 0

let read_exact r n =
  while available r < n && grow r do
    ()
  done;
  if available r < n then bad 400 "truncated body: peer closed mid-request";
  let s = String.sub r.pending r.pos n in
  r.pos <- r.pos + n;
  s

let hex_value c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> -1

let percent_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '+' -> Buffer.add_char buf ' '
    | '%' when !i + 2 < n && hex_value s.[!i + 1] >= 0 && hex_value s.[!i + 2] >= 0 ->
        Buffer.add_char buf
          (Char.chr ((hex_value s.[!i + 1] * 16) + hex_value s.[!i + 2]));
        i := !i + 2
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (percent_decode kv, "")
             | Some i ->
                 Some
                   ( percent_decode (String.sub kv 0 i),
                     percent_decode
                       (String.sub kv (i + 1) (String.length kv - i - 1)) ))

let split_target target =
  match String.index_opt target '?' with
  | None -> (percent_decode target, [])
  | Some i ->
      ( percent_decode (String.sub target 0 i),
        parse_query (String.sub target (i + 1) (String.length target - i - 1)) )

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] ->
      if meth = "" || target = "" then bad 400 "malformed request line";
      let version =
        match version with
        | "HTTP/1.1" -> `Http_1_1
        | "HTTP/1.0" -> `Http_1_0
        | _ -> bad 505 (Printf.sprintf "unsupported protocol %S" version)
      in
      let path, query = split_target target in
      (meth, path, query, version)
  | _ -> bad 400 "malformed request line"

let parse_header line =
  match String.index_opt line ':' with
  | None | Some 0 -> bad 400 (Printf.sprintf "malformed header line %S" line)
  | Some i ->
      let name = String.lowercase_ascii (String.sub line 0 i) in
      let value =
        String.trim (String.sub line (i + 1) (String.length line - i - 1))
      in
      if String.exists (fun c -> c = ' ' || c = '\t') name then
        bad 400 "whitespace in header name";
      (name, value)

let find_header headers name =
  List.assoc_opt (String.lowercase_ascii name) headers

let header req name = find_header req.headers name
let query_param req name = List.assoc_opt name req.query

let keep_alive req =
  let conn =
    Option.map String.lowercase_ascii (header req "connection")
  in
  match req.version with
  | `Http_1_1 -> conn <> Some "close"
  | `Http_1_0 -> conn = Some "keep-alive"

(* A body deliberately left on the wire: [remaining] declared bytes not
   yet pulled off [br]. *)
type body_rest = { br : reader; mutable remaining : int }

let body_remaining rest = rest.remaining

let read_body_chunk rest =
  if rest.remaining = 0 then ""
  else begin
    let r = rest.br in
    if available r = 0 && not (grow r) then
      bad 400 "truncated body: peer closed mid-request";
    let n = Stdlib.min (available r) rest.remaining in
    let s = String.sub r.pending r.pos n in
    r.pos <- r.pos + n;
    rest.remaining <- rest.remaining - n;
    s
  end

let read_body_all rest =
  let buf = Buffer.create (Stdlib.min rest.remaining 65536) in
  let rec go () =
    match read_body_chunk rest with
    | "" -> Buffer.contents buf
    | s ->
        Buffer.add_string buf s;
        go ()
  in
  go ()

let read_request_stream ?(limits = default_limits) ?reserve
    ?(stream_over = max_int) r =
  (* Distinguish "peer closed / went idle between requests" (a normal
     keep-alive ending: Ok None) from a fault mid-request (an error the
     peer should hear about). [started] flips once the request line is
     in hand. *)
  let started = ref false in
  let parse_from line =
    started := true;
    let meth, path, query, version = parse_request_line line in
    let rec read_headers acc n =
      if n > limits.max_header_count then bad 431 "too many headers";
      match read_line ~max_len:limits.max_header_line r with
      | None -> bad 400 "truncated request: missing blank line"
      | Some "" -> List.rev acc
      | Some line -> read_headers (parse_header line :: acc) (n + 1)
    in
    let headers = read_headers [] 0 in
    if find_header headers "transfer-encoding" <> None then
      bad 501 "transfer-encoding is not supported; send Content-Length";
    (* A client-supplied deadline must govern the body bytes too, so
       tighten the reader before the body is read (the server re-derives
       the same minimum for the handler). Malformed values are ignored
       here and rejected with 400 by the server once the request is in
       hand. *)
    (match find_header headers "x-fsdata-deadline-ms" with
    | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some ms when ms > 0 ->
            r.deadline <- Deadline.min r.deadline (Deadline.after_ms ms)
        | _ -> ())
    | None -> ());
    let body, rest =
      match find_header headers "content-length" with
      | None -> ("", None)
      | Some v -> (
          match int_of_string_opt (String.trim v) with
          | None ->
              bad 400 (Printf.sprintf "malformed Content-Length %S" v)
          | Some n when n < 0 ->
              bad 400 (Printf.sprintf "malformed Content-Length %S" v)
          | Some n when n > limits.max_body ->
              bad 413
                (Printf.sprintf "body of %d bytes exceeds the %d-byte limit" n
                   limits.max_body)
          | Some n ->
              (* admission control happens on the declared length,
                 before a single body byte is buffered *)
              (match reserve with
              | Some f when n > 0 && not (f n) ->
                  bad 503 "in-flight body budget exhausted"
              | _ -> ());
              if n > stream_over then ("", Some { br = r; remaining = n })
              else (read_exact r n, None))
    in
    ({ meth; path; query; version; headers; body }, rest)
  in
  try
    match read_line ~max_len:limits.max_request_line r with
    | None -> Ok None
    | Some "" -> (
        (* tolerate one stray blank line between pipelined requests *)
        match read_line ~max_len:limits.max_request_line r with
        | None -> Ok None
        | Some line -> Ok (Some (parse_from line)))
    | Some line -> Ok (Some (parse_from line))
  with
  | Bad e -> Error e
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* a partial request line left in the buffer is a started request
         too: a slowloris peer stalling mid-line hears 408, only a truly
         idle keep-alive connection is closed silently *)
      if !started || available r > 0 then
        Error { status = 408; reason = "request timed out" }
      else Ok None
  | Deadline.Expired ->
      if !started || available r > 0 then
        Error { status = 408; reason = "request timed out" }
      else Ok None

let read_request ?limits r =
  (* [stream_over] defaults to [max_int], so the rest is always [None] *)
  match read_request_stream ?limits r with
  | Ok (Some (req, _)) -> Ok (Some req)
  | Ok None -> Ok None
  | Error _ as e -> e

(* ----- responses ----- *)

type response = {
  status : int;
  resp_headers : (string * string) list;
  content_type : string;
  resp_body : string;
}

let response ?(headers = []) ?(content_type = "application/json") ~status body =
  { status; resp_headers = headers; content_type; resp_body = body }

let status_reason = function
  | 200 -> "OK"
  | 204 -> "No Content"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 406 -> "Not Acceptable"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 422 -> "Unprocessable Content"
  | 431 -> "Request Header Fields Too Large"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Unknown"

let serialize_response ~keep_alive resp =
  let buf = Buffer.create (String.length resp.resp_body + 256) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" resp.status (status_reason resp.status));
  Buffer.add_string buf ("content-type: " ^ resp.content_type ^ "\r\n");
  Buffer.add_string buf
    (Printf.sprintf "content-length: %d\r\n" (String.length resp.resp_body));
  Buffer.add_string buf
    (if keep_alive then "connection: keep-alive\r\n" else "connection: close\r\n");
  List.iter
    (fun (k, v) -> Buffer.add_string buf (k ^ ": " ^ v ^ "\r\n"))
    resp.resp_headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf resp.resp_body;
  Buffer.contents buf
