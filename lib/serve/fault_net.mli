(** Test-only fault injection over socket reads and writes.

    A shim between the server and [Unix.read]/[Unix.write_substring]:
    with no shim installed ([None]) the calls pass straight through at
    zero cost; with one, each I/O operation first consumes the next
    queued fault (raising it) and otherwise proceeds with its length
    clamped — short reads and torn writes on demand. The chaos suite
    ([test/test_chaos.ml]) drives the server through this shim to prove
    it survives the network misbehaving: injected [ECONNRESET]/[EPIPE]
    drop only the afflicted connection, [EINTR] is retried, a {!Kill}
    escapes the connection loop and exercises worker supervision.

    Deterministic by construction: faults fire in queue order, one per
    I/O call, with no randomness and no clock. All operations are
    mutex-protected; one shim may serve several worker domains.
    Injections are counted in [serve.faults.injected]. *)

exception Worker_killed
(** Not a socket error: deliberately escapes the connection handler's
    [Unix_error] recovery to simulate a worker-domain crash, so tests
    can prove the supervisor respawns workers. *)

(** One injected fault, consumed by the next matching I/O call:
    [Error e] raises [Unix.Unix_error (e, _, _)], [Kill] raises
    {!Worker_killed}, [Delay s] stalls the call by [s] seconds and then
    performs it. *)
type fault = Error of Unix.error | Kill | Delay of float

type t

val create : unit -> t
(** A shim with no faults queued and no length clamps. *)

val set_max_read : t -> int -> unit
(** Clamp every subsequent read to at most [n] bytes (short reads);
    [n < 1] removes the clamp. *)

val set_max_write : t -> int -> unit
(** Clamp every subsequent write to at most [n] bytes (torn writes);
    [n < 1] removes the clamp. *)

val inject_read : t -> fault list -> unit
(** Queue faults to be consumed, in order, by subsequent reads. *)

val inject_write : t -> fault list -> unit
(** Queue faults to be consumed, in order, by subsequent writes. *)

val injected : t -> int
(** Faults fired so far. *)

val read : t option -> Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read] through the shim; [None] is the production path. *)

val write_substring : t option -> Unix.file_descr -> string -> int -> int -> int
(** [Unix.write_substring] through the shim. *)
