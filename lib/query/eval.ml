open Fsdata_core
open Fsdata_data
open Syntax

let m_evals = Fsdata_obs.Metrics.counter "query.evals"

exception Stop

let rec test_pred (p : pred) v =
  match p with
  | Compare (path, c, lit) -> Value.test_compare (Value.get v path) c lit
  | Exists path -> Value.exists (Value.get v path)
  | And (a, b) -> test_pred a v && test_pred b v
  | Or (a, b) -> test_pred a v || test_pred b v
  | Not a -> not (test_pred a v)

(* Per-evaluation pipeline state: take budgets are refs instantiated
   here, so a checked query can be evaluated many times. *)
type rstage =
  | RWhere of pred
  | RSelect of (string * path) list
  | RMap of path
  | RTake of int ref
  | RCount

let instantiate (q : Syntax.t) : rstage list =
  List.map
    (function
      | Where p -> RWhere p
      | Select ps ->
          RSelect (List.map (fun p -> (List.hd (List.rev p), p)) ps)
      | Map p -> RMap p
      | Take n -> RTake (ref n)
      | Count -> RCount)
    q

let eval ?cancel (c : Check.checked) (src : string) : Value.result =
  Fsdata_obs.Trace.with_span "query.eval" @@ fun () ->
  Fsdata_obs.Metrics.incr m_evals;
  let scanned = ref 0
  and matched = ref 0
  and skipped = ref 0
  and malformed = ref 0 in
  let out = ref [] in
  let stages = instantiate c.query in
  let counting = List.exists (function RCount -> true | _ -> false) stages in
  let rec run stages v =
    match stages with
    | [] ->
        incr matched;
        out := v :: !out
    | RWhere p :: rest -> if test_pred p v then run rest v
    | RSelect fields :: rest ->
        run rest
          (Shape_compile.Vrecord
             ( Data_value.json_record_name,
               Array.of_list
                 (List.map (fun (name, p) -> (name, Value.get v p)) fields) ))
    | RMap p :: rest -> run rest (Value.get v p)
    | RTake r :: rest ->
        if !r <= 0 then raise Stop
        else begin
          decr r;
          run rest v;
          if !r = 0 then raise Stop
        end
    | RCount :: _ -> incr matched
  in
  (try
     Json.fold_many ?cancel ~chunk_size:1
       ~on_error:(fun _ ~skipped:_ -> incr malformed)
       (fun () docs ->
         List.iter
           (fun d ->
             let d = Primitive.normalize d in
             incr scanned;
             if Shape_check.has_shape c.pruned d then
               run stages (Shape_compile.convert c.pruned d)
             else incr skipped)
           docs)
       () src
   with Stop -> ());
  let rows =
    if counting then [ Shape_compile.Vint !matched ] else List.rev !out
  in
  let stats : Value.stats =
    {
      scanned = !scanned;
      matched = !matched;
      skipped = !skipped;
      malformed = !malformed;
    }
  in
  Value.record_stats stats;
  { Value.rows; stats }
