(** Row values and the comparison semantics both evaluators share.

    Rows are {!Fsdata_core.Shape_compile.tvalue}s — what the compiled
    decoder produces and what {!Fsdata_core.Shape_compile.convert}
    produces for the reference path, so the two engines operate on
    identical values by the differential contract of [Shape_compile].
    The helpers here (null propagation, literal comparison, JSON
    rendering) are deliberately shared: {!Eval} and {!Eval_fast} differ
    in how they {e decode and access} rows, never in what a comparison
    means. *)

open Fsdata_core

type stats = {
  scanned : int;
      (** documents decoded and examined (conforming + skipped) *)
  matched : int;  (** rows that reached the end of the pipeline *)
  skipped : int;
      (** documents that parsed but did not conform to the pruned σ *)
  malformed : int;  (** documents skipped as unparseable *)
}

type result = { rows : Shape_compile.tvalue list; stats : stats }
(** Result rows in corpus order; for a [count] query, the single row
    [Vint n]. *)

val is_null : Shape_compile.tvalue -> bool
(** Null as the queries see it: [Vnull], or a generic null carried
    under [Vany]. *)

val get : Shape_compile.tvalue -> Syntax.path -> Shape_compile.tvalue
(** Name-based path access with null propagation: projecting a field
    out of null is null, as is a field the row does not carry (the
    convField rule of Figure 6). Total — never raises. *)

val test_compare :
  Shape_compile.tvalue -> Syntax.cmp -> Syntax.literal -> bool
(** The comparison semantics (docs/QUERY.md §Predicates): [== null] /
    [!= null] test nullness; every other comparison with a null (or
    incomparable) value is false; numbers compare numerically across
    [int]/[float], strings lexicographically, dates chronologically. *)

val exists : Shape_compile.tvalue -> bool
(** [not (is_null v)]. *)

val render : Shape_compile.tvalue -> string
(** One row as a single line of compact JSON (dates as ISO 8601) — the
    byte format both engines emit and the equivalence tests compare. *)

val record_stats : stats -> unit
(** Bump the [query.docs] / [query.rows] / [query.skipped] /
    [query.malformed] counters once per evaluation. *)
