type path = string list

type literal =
  | Lnull
  | Lbool of bool
  | Lint of int
  | Lfloat of float
  | Lstring of string

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | Compare of path * cmp * literal
  | Exists of path
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type stage =
  | Where of pred
  | Select of path list
  | Map of path
  | Take of int
  | Count

type t = stage list

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* Mirrors the lexer: a segment prints bare only when it would lex
   back as one IDENT token that is not a keyword; anything else is
   quoted (and escaped) like a string literal. *)
let keywords =
  [
    "where"; "select"; "map"; "take"; "count"; "exists"; "and"; "or"; "not";
    "true"; "false"; "null";
  ]

let is_plain_segment s =
  s <> ""
  && (not (List.mem s keywords))
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       s

let pp_path ppf = function
  | [] -> Format.pp_print_string ppf "."
  | segs ->
      List.iter
        (fun s ->
          if is_plain_segment s then Format.fprintf ppf ".%s" s
          else Format.fprintf ppf ".%s" (escape_string s))
        segs

let pp_cmp ppf c =
  Format.pp_print_string ppf
    (match c with
    | Eq -> "=="
    | Ne -> "!="
    | Lt -> "<"
    | Le -> "<="
    | Gt -> ">"
    | Ge -> ">=")

let pp_literal ppf = function
  | Lnull -> Format.pp_print_string ppf "null"
  | Lbool b -> Format.pp_print_bool ppf b
  | Lint i -> Format.pp_print_int ppf i
  | Lfloat f ->
      (* a float literal must reparse as a float: keep a decimal point *)
      let s = Printf.sprintf "%.17g" f in
      if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
      then Format.pp_print_string ppf s
      else Format.fprintf ppf "%s.0" s
  | Lstring s -> Format.pp_print_string ppf (escape_string s)

(* Predicate printing tracks the grammar's precedence (or < and < not)
   and its right associativity, parenthesizing only where reparsing
   would otherwise regroup. *)
let rec pp_pred ppf p = pp_or ppf p

and pp_or ppf = function
  | Or (a, b) -> Format.fprintf ppf "%a or %a" pp_and a pp_or b
  | p -> pp_and ppf p

and pp_and ppf = function
  | And (a, b) -> Format.fprintf ppf "%a and %a" pp_unary a pp_and b
  | p -> pp_unary ppf p

and pp_unary ppf = function
  | Not p -> Format.fprintf ppf "not %a" pp_unary p
  | Compare (p, c, l) ->
      Format.fprintf ppf "%a %a %a" pp_path p pp_cmp c pp_literal l
  | Exists p -> Format.fprintf ppf "exists %a" pp_path p
  | (And _ | Or _) as p -> Format.fprintf ppf "(%a)" pp_pred p

let pp_stage ppf = function
  | Where p -> Format.fprintf ppf "where %a" pp_pred p
  | Select ps ->
      Format.fprintf ppf "select %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_path)
        ps
  | Map p -> Format.fprintf ppf "map %a" pp_path p
  | Take n -> Format.fprintf ppf "take %d" n
  | Count -> Format.pp_print_string ppf "count"

let pp ppf q =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
    pp_stage ppf q

let to_string q = Format.asprintf "%a" pp q

let has_terminal_take n q =
  List.exists
    (function Take m -> m <= n | Count -> true | _ -> false)
    q

let ensure_limit n q = if has_terminal_take n q then q else q @ [ Take n ]
