(** Shape-checking queries against the inferred σ, before execution.

    [check σ q] types the pipeline [q] against the per-document shape
    [σ] by mirroring the Foo typing rules over provided types
    (Figure 7 of the paper): paths are projections through record
    shapes (nullable shapes are transparent but mark the result
    nullable, exactly like the [convField] null-propagation of
    Figure 6), and comparisons demand primitive shapes compatible with
    the literal under the preferred-shape relation
    ({!Fsdata_core.Preference.is_preferred_primitive}) — an [int]
    field may be compared with a float literal because [int ⊑ float],
    a [date] field with a parseable date string because
    [date ⊑ string]. Anything else is rejected with an
    {!Fsdata_core.Explain}-style diagnostic naming the offending path,
    what was expected there, and the shape σ actually provides —
    {e before a single byte of the corpus is read}.

    Checking also computes the {e pruned} shape: σ restricted to the
    paths the query touches. Both evaluators decode documents against
    the pruned shape, which is what makes projection pushdown real —
    the compiled decoder skips untouched fields at the lexer level —
    and keeps the two engines equivalent by construction (they agree
    on which documents conform because they test the same shape).
    docs/QUERY.md spells out the full rules. *)

(** A typing error, in the style of {!Fsdata_core.Explain.mismatch}:
    the path at which the query disagrees with σ, what the query
    needed there, and the shape σ actually has. *)
type error = {
  at : string;  (** path from the document root, [.a.b] notation *)
  expected : string;  (** what the query required there, in words *)
  found : Fsdata_core.Shape.t;  (** the shape σ provides there *)
}

val pp_error : Format.formatter -> error -> unit
(** Renders [at PATH: expected EXPECTED, found SHAPE] — the format
    [fsdata query] prints and the serve layer returns as JSON. *)

(** A successfully checked query, ready for either evaluator. *)
type checked = {
  query : Syntax.t;
  input : Fsdata_core.Shape.t;  (** the σ the query was checked against *)
  pruned : Fsdata_core.Shape.t;
      (** σ restricted to the touched paths; what both evaluators
          decode against (the pushdown shape) *)
  output : Fsdata_core.Shape.t;  (** the shape of each result row *)
}

val check :
  Fsdata_core.Shape.t -> Syntax.t -> (checked, error) result
(** [check σ q] types [q] against the per-document shape [σ]. Pure —
    reads no corpus data. Counted by [query.checks] / [query.rejected];
    traced as [query.check]. *)
