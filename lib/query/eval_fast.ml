open Fsdata_core
open Syntax

let m_plans = Fsdata_obs.Metrics.counter "query.plans"
let m_evals = Fsdata_obs.Metrics.counter "query.evals"

(* ----- Access-path compilation ----- *)

(* The compiled decoder emits record fields in shape order
   (Shape_compile.convert builds them from the shape's field list, and
   the direct decoder is pinned to convert), so a path through the
   pruned shape resolves statically to integer slot indices. A path
   that leaves the statically known region — only reachable through
   [Vany] positions the checker refused to traverse — falls back to
   name-based access, which is semantically identical. *)
let slot_walk (idxs : int array) (v : Shape_compile.tvalue) :
    Shape_compile.tvalue =
  let n = Array.length idxs in
  let rec go i v =
    if i = n then v
    else
      match v with
      | Shape_compile.Vrecord (_, fields) -> go (i + 1) (snd fields.(idxs.(i)))
      | _ -> Shape_compile.Vnull
  in
  go 0 v

let accessor (shape : Shape.t) (p : path) :
    (Shape_compile.tvalue -> Shape_compile.tvalue) * Shape.t =
  let rec go shape p idxs =
    match p with
    | [] -> Some (List.rev idxs, shape)
    | f :: rest -> (
        match Shape.strip_nullable shape with
        | Shape.Record { fields; _ } ->
            let rec find i = function
              | [] -> None
              | (k, s) :: _ when String.equal k f -> Some (i, s)
              | _ :: tl -> find (i + 1) tl
            in
            (match find 0 fields with
            | Some (i, s) -> go s rest (i :: idxs)
            | None -> None)
        | _ -> None)
  in
  match go shape p [] with
  | Some (idxs, endshape) ->
      let idxs = Array.of_list idxs in
      ((fun v -> slot_walk idxs v), endshape)
  | None -> ((fun v -> Value.get v p), Shape.any)

(* ----- Stage compilation ----- *)

type cstage =
  | CWhere of (Shape_compile.tvalue -> bool)
  | CSelect of (string * (Shape_compile.tvalue -> Shape_compile.tvalue)) array
  | CMap of (Shape_compile.tvalue -> Shape_compile.tvalue)
  | CTake of int
  | CCount

type plan = {
  checked : Check.checked;
  dec : Shape_compile.compiled;
  prog : cstage list;
}

let checked p = p.checked

let rec compile_pred shape (p : pred) : Shape_compile.tvalue -> bool =
  match p with
  | Compare (path, c, lit) ->
      let get, _ = accessor shape path in
      fun v -> Value.test_compare (get v) c lit
  | Exists path ->
      let get, _ = accessor shape path in
      fun v -> Value.exists (get v)
  | And (a, b) ->
      let fa = compile_pred shape a and fb = compile_pred shape b in
      fun v -> fa v && fb v
  | Or (a, b) ->
      let fa = compile_pred shape a and fb = compile_pred shape b in
      fun v -> fa v || fb v
  | Not a ->
      let fa = compile_pred shape a in
      fun v -> not (fa v)

let compile (c : Check.checked) : plan =
  Fsdata_obs.Trace.with_span "query.plan" @@ fun () ->
  Fsdata_obs.Metrics.incr m_plans;
  let rec stages shape = function
    | [] -> []
    | Where p :: rest -> CWhere (compile_pred shape p) :: stages shape rest
    | Select ps :: rest ->
        let fields =
          List.map
            (fun p ->
              let name = List.hd (List.rev p) in
              let get, s = accessor shape p in
              ((name, get), (name, s)))
            ps
        in
        let shape' =
          Shape.record Fsdata_data.Data_value.json_record_name
            (List.map snd fields)
        in
        CSelect (Array.of_list (List.map fst fields)) :: stages shape' rest
    | Map p :: rest ->
        let get, s = accessor shape p in
        CMap get :: stages s rest
    | Take n :: rest -> CTake n :: stages shape rest
    | Count :: rest -> CCount :: stages shape rest
  in
  {
    checked = c;
    dec = Shape_compile.compile c.pruned;
    prog = stages c.pruned c.query;
  }

(* ----- Evaluation ----- *)

exception Stop

type rstage =
  | RWhere of (Shape_compile.tvalue -> bool)
  | RSelect of (string * (Shape_compile.tvalue -> Shape_compile.tvalue)) array
  | RMap of (Shape_compile.tvalue -> Shape_compile.tvalue)
  | RTake of int ref
  | RCount

let eval ?cancel (p : plan) (src : string) : Value.result =
  Fsdata_obs.Trace.with_span "query.eval_fast" @@ fun () ->
  Fsdata_obs.Metrics.incr m_evals;
  let scanned = ref 0
  and matched = ref 0
  and skipped = ref 0
  and malformed = ref 0 in
  let out = ref [] in
  let stages =
    List.map
      (function
        | CWhere f -> RWhere f
        | CSelect fs -> RSelect fs
        | CMap f -> RMap f
        | CTake n -> RTake (ref n)
        | CCount -> RCount)
      p.prog
  in
  let counting = List.exists (function RCount -> true | _ -> false) stages in
  let rec run stages v =
    match stages with
    | [] ->
        incr matched;
        out := v :: !out
    | RWhere f :: rest -> if f v then run rest v
    | RSelect fields :: rest ->
        run rest
          (Shape_compile.Vrecord
             ( Fsdata_data.Data_value.json_record_name,
               Array.map (fun (name, get) -> (name, get v)) fields ))
    | RMap f :: rest -> run rest (f v)
    | RTake r :: rest ->
        if !r <= 0 then raise Stop
        else begin
          decr r;
          run rest v;
          if !r = 0 then raise Stop
        end
    | RCount :: _ -> incr matched
  in
  let () =
    let (), _dstats =
      Shape_compile.fold_corpus ?cancel
        ~on_error:(fun _ ~skipped:_ -> incr malformed)
        p.dec
        (fun () outcome ->
          match outcome with
          | Shape_compile.Direct v -> (
              incr scanned;
              match run stages v with
              | () -> `Continue ()
              | exception Stop -> `Stop ())
          | Shape_compile.Fallback _ ->
              incr scanned;
              incr skipped;
              `Continue ())
        () src
    in
    ()
  in
  let rows =
    if counting then [ Shape_compile.Vint !matched ] else List.rev !out
  in
  let stats : Value.stats =
    {
      scanned = !scanned;
      matched = !matched;
      skipped = !skipped;
      malformed = !malformed;
    }
  in
  Value.record_stats stats;
  { Value.rows; stats }
