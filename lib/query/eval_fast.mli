(** The fast evaluator: shape-compiled decoding, precompiled stages.

    [compile] pairs the checked query with a
    {!Fsdata_core.Shape_compile} parser for the {e pruned} σ — so a
    conforming document is decoded straight into the query's projected
    slots, untouched fields skipped at the lexer level without
    materializing a generic value — and precompiles every stage: paths
    become integer slot indices into the pruned records (the decoder
    emits fields in shape order), predicates become closures over
    {!Value.test_compare}. A plan is immutable and reusable: the serve
    layer caches plans per [(stream, version, query)] and evaluates
    them concurrently.

    Semantics are pinned to {!Eval}, the specification: identical rows
    (byte-for-byte) and identical stats on every corpus — the two
    engines agree on which documents conform because both test the
    same pruned shape ([Direct] ⟺ [has_shape]), and they share the
    comparison semantics of {!Value}. *)

type plan
(** A compiled query: pruned-shape decoder plus precompiled stages. *)

val compile : Check.checked -> plan
(** Build the plan; cost is proportional to the pruned shape's size
    plus the query's, paid once. Counted by [query.plans]; traced as
    [query.plan]. *)

val checked : plan -> Check.checked
(** The checked query the plan was compiled from. *)

val eval :
  ?cancel:Fsdata_data.Cancel.t -> plan -> string -> Value.result
(** [eval p src] streams the corpus through the compiled decoder
    ([Shape_compile.fold_corpus]) and the precompiled stages; [take]
    stops the scan early. Skipped/malformed accounting, cancellation
    and instrumentation mirror {!Eval.eval}; traced as
    [query.eval_fast]. *)
