(** Abstract syntax of the query form.

    A query is a pipeline of stages applied to every top-level document
    of a corpus, left to right:

    {v
      query ::= stage ('|' stage)*
      stage ::= 'where' pred
              | 'select' path (',' path)*
              | 'map' path
              | 'take' INT
              | 'count'
    v}

    The concrete grammar lives in {!Parser}; the typing rules — every
    query is checked against the inferred shape [σ] before a single
    corpus byte is read — live in {!Check}; docs/QUERY.md is the full
    reference. *)

type path = string list
(** A field path from the document root: [["a"; "b"]] is [.a.b], [[]]
    is the document itself (written [.]). *)

(** A literal on the right-hand side of a comparison. *)
type literal =
  | Lnull
  | Lbool of bool
  | Lint of int
  | Lfloat of float
  | Lstring of string

(** Comparison operators: [== != < <= > >=]. *)
type cmp = Eq | Ne | Lt | Le | Gt | Ge

(** Filter predicates. *)
type pred =
  | Compare of path * cmp * literal
      (** [.path OP literal]; null at the path makes any comparison
          false except [== null] / [!= null] (docs/QUERY.md §Nulls). *)
  | Exists of path  (** [exists .path] — the value there is not null. *)
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

(** Pipeline stages. *)
type stage =
  | Where of pred  (** keep rows satisfying the predicate *)
  | Select of path list
      (** project fields into a fresh record, one field per path, named
          by the path's last segment *)
  | Map of path  (** replace the row by the value at the path *)
  | Take of int  (** stop the whole scan after this many rows pass *)
  | Count  (** final stage: emit the row count instead of the rows *)

type t = stage list
(** A query: the stage pipeline, in source order. *)

val pp_path : Format.formatter -> path -> unit
(** [.a.b] notation; the empty path prints as [.]. *)

val pp : Format.formatter -> t -> unit
(** Concrete syntax that reparses to the same query
    ([Parser.parse (to_string q) = q], property-tested). *)

val to_string : t -> string

val has_terminal_take : int -> t -> bool
(** [has_terminal_take n q] is true when [q] already bounds its result
    rows at [n] or fewer — it ends in a [count], or contains a
    [take m] with [m <= n]. *)

val ensure_limit : int -> t -> t
(** [ensure_limit n q] appends [take n] unless {!has_terminal_take}
    already holds — the serving layer caps response sizes with it. *)
