(** Parsing the textual query syntax.

    Accepts exactly the notation {!Syntax.pp} prints — queries
    round-trip through text (property-tested) — with free whitespace
    between tokens:

    {v
      query   ::= stage ('|' stage)*
      stage   ::= 'where' pred
                | 'select' path (',' path)*
                | 'map' path
                | 'take' INT
                | 'count'
      pred    ::= conj ('or' conj)*
      conj    ::= unary ('and' unary)*
      unary   ::= 'not' unary | '(' pred ')'
                | path CMP literal | 'exists' path
      CMP     ::= '==' | '!=' | '<' | '<=' | '>' | '>='
      path    ::= '.' | ('.' segment)+
      segment ::= IDENT | STRING
      literal ::= 'null' | 'true' | 'false' | NUMBER | STRING
    v}

    [IDENT] is [[A-Za-z_][A-Za-z0-9_-]*]; quote a segment
    ([."odd key"]) to reach fields the identifier syntax cannot spell.
    [STRING] uses JSON's escapes. Keywords ([where], [and], [not], …)
    are reserved as identifiers. See docs/QUERY.md for the full
    reference with examples. *)

exception Parse_error of { position : int; message : string }
(** Raised on malformed input; [position] is a 0-based byte offset. *)

val parse : string -> Syntax.t
(** @raise Parse_error on malformed input. *)

val parse_result : string -> (Syntax.t, string) result
(** Like {!parse} but returning the formatted error message. *)
