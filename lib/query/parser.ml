open Syntax

exception Parse_error of { position : int; message : string }

type state = { src : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-'

let keywords =
  [ "where"; "select"; "map"; "take"; "count"; "exists"; "and"; "or"; "not";
    "true"; "false"; "null" ]

(* Scan an identifier at the cursor, or return None without moving. *)
let ident_opt st =
  match peek st with
  | Some c when is_ident_start c ->
      let start = st.pos in
      while
        st.pos < String.length st.src && is_ident_char st.src.[st.pos]
      do
        st.pos <- st.pos + 1
      done;
      Some (String.sub st.src start (st.pos - start))
  | _ -> None

(* Peek the identifier at the cursor without consuming it. *)
let peek_word st =
  let saved = st.pos in
  let w = ident_opt st in
  st.pos <- saved;
  w

let eat_word st w =
  match peek_word st with
  | Some w' when String.equal w w' ->
      st.pos <- st.pos + String.length w;
      true
  | _ -> false

let string_lit st =
  (* cursor is on the opening quote *)
  let b = Buffer.create 16 in
  st.pos <- st.pos + 1;
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string literal"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some (('"' | '\\' | '/') as c) ->
            Buffer.add_char b c;
            st.pos <- st.pos + 1;
            loop ()
        | Some 'n' -> Buffer.add_char b '\n'; st.pos <- st.pos + 1; loop ()
        | Some 't' -> Buffer.add_char b '\t'; st.pos <- st.pos + 1; loop ()
        | Some 'r' -> Buffer.add_char b '\r'; st.pos <- st.pos + 1; loop ()
        | _ -> fail st "unsupported escape in string literal")
    | Some c ->
        Buffer.add_char b c;
        st.pos <- st.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents b

let segment st =
  match peek st with
  | Some '"' -> string_lit st
  | _ -> (
      match ident_opt st with
      | Some w ->
          if List.mem w keywords then
            fail st (Printf.sprintf "'%s' is a keyword; quote it to use it as a field name" w)
          else w
      | None -> fail st "expected a field name after '.'")

let path st =
  skip_ws st;
  match peek st with
  | Some '.' ->
      st.pos <- st.pos + 1;
      let rec segs acc =
        match peek st with
        | Some c when is_ident_start c || c = '"' ->
            let s = segment st in
            if peek st = Some '.' then begin
              st.pos <- st.pos + 1;
              segs (s :: acc)
            end
            else List.rev (s :: acc)
        | _ when acc = [] -> [] (* the bare '.' path: the document itself *)
        | _ -> fail st "expected a field name after '.'"
      in
      segs []
  | _ -> fail st "expected a path (paths start with '.')"

let number st =
  let start = st.pos in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  let digits () =
    let n0 = st.pos in
    while
      st.pos < String.length st.src
      && st.src.[st.pos] >= '0'
      && st.src.[st.pos] <= '9'
    do
      st.pos <- st.pos + 1
    done;
    if st.pos = n0 then fail st "expected a digit"
  in
  digits ();
  let is_float = ref false in
  if peek st = Some '.' then begin
    is_float := true;
    st.pos <- st.pos + 1;
    digits ()
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      st.pos <- st.pos + 1;
      (match peek st with
      | Some ('+' | '-') -> st.pos <- st.pos + 1
      | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if !is_float then Lfloat (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Lint i
    | None -> Lfloat (float_of_string text)

let literal st =
  skip_ws st;
  match peek st with
  | Some '"' -> Lstring (string_lit st)
  | Some ('-' | '0' .. '9') -> number st
  | _ ->
      if eat_word st "null" then Lnull
      else if eat_word st "true" then Lbool true
      else if eat_word st "false" then Lbool false
      else fail st "expected a literal (null, true, false, a number or a string)"

let cmp_op st =
  skip_ws st;
  let two op =
    st.pos <- st.pos + 2;
    op
  and one op =
    st.pos <- st.pos + 1;
    op
  in
  let at i =
    if st.pos + i < String.length st.src then Some st.src.[st.pos + i] else None
  in
  match (peek st, at 1) with
  | Some '=', Some '=' -> two Eq
  | Some '!', Some '=' -> two Ne
  | Some '<', Some '=' -> two Le
  | Some '<', _ -> one Lt
  | Some '>', Some '=' -> two Ge
  | Some '>', _ -> one Gt
  | _ -> fail st "expected a comparison operator (== != < <= > >=)"

let rec pred st =
  let a = conj st in
  skip_ws st;
  if eat_word st "or" then Or (a, pred st) else a

and conj st =
  let a = unary st in
  skip_ws st;
  if eat_word st "and" then And (a, conj st) else a

and unary st =
  skip_ws st;
  if eat_word st "not" then Not (unary st)
  else if eat_word st "exists" then Exists (path st)
  else
    match peek st with
    | Some '(' ->
        st.pos <- st.pos + 1;
        let p = pred st in
        skip_ws st;
        if peek st = Some ')' then begin
          st.pos <- st.pos + 1;
          p
        end
        else fail st "expected ')'"
    | Some '.' ->
        let p = path st in
        let op = cmp_op st in
        let l = literal st in
        Compare (p, op, l)
    | _ -> fail st "expected a predicate (a path comparison, 'exists', 'not' or '(')"

(* [Or]/[And] parse right-nested above; the printer emits left-nested
   trees, so rebalance is unnecessary — both associate, and evaluation
   order is not observable. *)

let int_lit st =
  skip_ws st;
  match number st with
  | Lint i when i >= 0 -> i
  | Lint _ -> fail st "take wants a non-negative count"
  | _ -> fail st "take wants an integer"

let stage st =
  skip_ws st;
  match peek_word st with
  | Some "where" ->
      ignore (eat_word st "where");
      Where (pred st)
  | Some "select" ->
      ignore (eat_word st "select");
      let rec fields acc =
        let p = path st in
        skip_ws st;
        if peek st = Some ',' then begin
          st.pos <- st.pos + 1;
          fields (p :: acc)
        end
        else List.rev (p :: acc)
      in
      Select (fields [])
  | Some "map" ->
      ignore (eat_word st "map");
      Map (path st)
  | Some "take" ->
      ignore (eat_word st "take");
      Take (int_lit st)
  | Some "count" ->
      ignore (eat_word st "count");
      Count
  | _ -> fail st "expected a stage (where, select, map, take or count)"

let parse src =
  let st = { src; pos = 0 } in
  let rec stages acc =
    let s = stage st in
    skip_ws st;
    match peek st with
    | Some '|' ->
        st.pos <- st.pos + 1;
        stages (s :: acc)
    | None -> List.rev (s :: acc)
    | Some c -> fail st (Printf.sprintf "unexpected %C after stage" c)
  in
  skip_ws st;
  if peek st = None then fail st "empty query";
  stages []

let parse_result src =
  match parse src with
  | q -> Ok q
  | exception Parse_error { position; message } ->
      Error (Printf.sprintf "query parse error at offset %d: %s" position message)
