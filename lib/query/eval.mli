(** The reference evaluator: interpreted, streaming, formal.

    Documents are parsed generically ([Json.fold_many], one document at
    a time), normalized, conformance-tested against the pruned σ with
    [Shape_check.has_shape], and converted through
    {!Fsdata_core.Shape_compile.convert} — the executable specification
    — before the stage pipeline is interpreted over them. Nothing is
    materialized beyond the current document; [take] stops the scan at
    the first satisfied bound, so a [take 10] over a gigabyte corpus
    reads only as far as its tenth row.

    This is the specification {!Eval_fast} is differentially tested
    against: byte-identical rows and identical stats on every corpus
    (the ≥1000-case QCheck property in [test/test_query.ml]). *)

val eval :
  ?cancel:Fsdata_data.Cancel.t ->
  Check.checked ->
  string ->
  Value.result
(** [eval c src] runs the checked query over the whitespace-separated
    JSON documents of [src]. Non-conforming documents are skipped and
    counted ([stats.skipped]); malformed ones are skipped at the next
    top-level boundary ([stats.malformed]), exactly like the tolerant
    drivers. [cancel] is polled between documents and raises
    [Cancel.Cancelled] — the serve layer threads request deadlines
    through it. Traced as [query.eval]; counted by [query.evals] and
    the [query.docs]/[query.rows]/[query.skipped]/[query.malformed]
    counters. *)
