open Fsdata_core
open Syntax

type error = { at : string; expected : string; found : Shape.t }

(* Render the shape with an effectively infinite margin so the
   diagnostic stays a single line wherever it is printed or logged. *)
let flat_shape s =
  let b = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer b in
  Format.pp_set_margin ppf 1_000_000;
  Format.fprintf ppf "%a%!" Shape.pp s;
  Buffer.contents b

let pp_error ppf e =
  Format.fprintf ppf "at %s: expected %s, found %s" e.at e.expected
    (flat_shape e.found)

type checked = {
  query : Syntax.t;
  input : Shape.t;
  pruned : Shape.t;
  output : Shape.t;
}

let m_checks = Fsdata_obs.Metrics.counter "query.checks"
let m_rejected = Fsdata_obs.Metrics.counter "query.rejected"

(* ----- Path resolution through σ ----- *)

let path_str p = Format.asprintf "%a" pp_path p

(* Resolve a path against the current row shape. Nullable shapes are
   transparent to projection but taint the result: a row may carry null
   where the document omitted the subtree, so everything reached through
   a nullable position is itself nullable (the convField rule). *)
let resolve (cur : Shape.t) (p : path) : (Shape.t * bool, error) result =
  let rec go shape segs seen nullable =
    match segs with
    | [] -> Ok (shape, nullable)
    | f :: rest -> (
        let shape, nullable =
          match shape with
          | Shape.Nullable s -> (s, true)
          | s -> (s, nullable)
        in
        match shape with
        | Shape.Record { fields; _ } -> (
            match List.assoc_opt f fields with
            | Some s -> go s rest (f :: seen) nullable
            | None ->
                Error
                  {
                    at = path_str (List.rev (f :: seen));
                    expected = Printf.sprintf "a record with a field '%s'" f;
                    found = shape;
                  })
        | found ->
            Error
              {
                at = path_str (List.rev (f :: seen));
                expected = Printf.sprintf "a record with a field '%s'" f;
                found;
              })
  in
  go cur p [] false

(* ----- Literal compatibility ----- *)

(* The primitive fragment of the preferred-shape relation decides which
   literals a path may be compared with — with one representation
   caveat: [bit] is provided as bool (prim_of_value), so it compares
   as a boolean, while [bit0]/[bit1] are provided as int and compare
   numerically. *)
let check_compare ~at (shape : Shape.t) (c : cmp) (lit : literal) :
    (unit, error) result =
  let s = Shape.strip_nullable shape in
  let ordered = match c with Lt | Le | Gt | Ge -> true | Eq | Ne -> false in
  let err expected = Error { at; expected; found = shape } in
  match lit with
  | Lnull ->
      if ordered then err "an equality comparison with null (== or != only)"
      else (
        match shape with
        | Shape.Null | Shape.Nullable _ -> Ok ()
        | _ -> err "a nullable shape to compare with null")
  | Lbool _ ->
      if ordered then err "an equality comparison (booleans are not ordered)"
      else (
        match s with
        | Shape.Primitive (Shape.Bool | Shape.Bit) -> Ok ()
        | _ -> err "a boolean shape (bool or bit)")
  | Lint _ | Lfloat _ -> (
      match s with
      | Shape.Primitive (Shape.Int | Shape.Float | Shape.Bit0 | Shape.Bit1) ->
          Ok ()
      | _ -> err "a numeric shape (int or float)")
  | Lstring str -> (
      match s with
      | Shape.Primitive Shape.String -> Ok ()
      | Shape.Primitive Shape.Date -> (
          match Fsdata_data.Date.of_string str with
          | Some _ -> Ok ()
          | None -> err "a date literal (the shape at this path is date)")
      | _ -> err "a string shape (string or date)")

(* ----- Pruning: σ restricted to the touched paths ----- *)

type trie = All | Fields of (string * trie) list

let rec trie_add t p =
  match (t, p) with
  | All, _ -> All
  | _, [] -> All
  | Fields fs, f :: rest ->
      let sub =
        match List.assoc_opt f fs with Some s -> s | None -> Fields []
      in
      Fields ((f, trie_add sub rest) :: List.remove_assoc f fs)

let rec prune (s : Shape.t) (t : trie) : Shape.t =
  match t with
  | All -> s
  | Fields fs -> (
      match s with
      | Shape.Record r ->
          Shape.Record
            {
              r with
              fields =
                List.filter_map
                  (fun (f, sf) ->
                    match List.assoc_opt f fs with
                    | Some sub -> Some (f, prune sf sub)
                    | None -> None)
                  r.fields;
            }
      | Shape.Nullable s' -> Shape.nullable (prune s' t)
      | other -> other)

(* ----- The checker ----- *)

(* Where a row came from, in original-document coordinates — how paths
   typed against a transformed row translate back to σ for pruning. *)
type origin =
  | OPath of string list  (** the row is the document at this path *)
  | ORecord of (string * string list) list
      (** the row was built by [select]: output field ↦ original path *)

let translate origin p =
  match (origin, p) with
  | OPath base, p -> [ base @ p ]
  | ORecord m, [] -> List.map snd m
  | ORecord m, f :: rest -> (
      match List.assoc_opt f m with
      | Some base -> [ base @ rest ]
      | None -> [])

let touch trie origin p =
  List.fold_left trie_add trie (translate origin p)

let ( let* ) = Result.bind

let rec check_pred cur origin trie = function
  | Compare (p, c, lit) ->
      let* s, _nullable = resolve cur p in
      let* () = check_compare ~at:(path_str p) s c lit in
      Ok (touch trie origin p)
  | Exists p ->
      let* _ = resolve cur p in
      Ok (touch trie origin p)
  | And (a, b) | Or (a, b) ->
      let* trie = check_pred cur origin trie a in
      check_pred cur origin trie b
  | Not a -> check_pred cur origin trie a

let check (sigma : Shape.t) (q : Syntax.t) : (checked, error) result =
  Fsdata_obs.Trace.with_span "query.check" @@ fun () ->
  Fsdata_obs.Metrics.incr m_checks;
  let rec go cur origin trie = function
    | [] -> Ok (cur, trie)
    | [ Count ] -> Ok (Shape.Primitive Shape.Int, trie)
    | Count :: _ ->
        Error { at = "."; expected = "count to be the final stage"; found = cur }
    | Where p :: rest ->
        let* trie = check_pred cur origin trie p in
        go cur origin trie rest
    | Select ps :: rest ->
        let* fields =
          List.fold_left
            (fun acc p ->
              let* acc = acc in
              match List.rev p with
              | [] ->
                  Error
                    {
                      at = ".";
                      expected = "a field path in select (a name for the output field)";
                      found = cur;
                    }
              | name :: _ ->
                  if List.mem_assoc name acc then
                    Error
                      {
                        at = path_str p;
                        expected =
                          Printf.sprintf
                            "distinct output field names in select ('%s' repeats)"
                            name;
                        found = cur;
                      }
                  else
                    let* s, nullable = resolve cur p in
                    let s = if nullable then Shape.nullable s else s in
                    Ok (acc @ [ (name, s) ]))
            (Ok []) ps
        in
        let trie = List.fold_left (fun t p -> touch t origin p) trie ps in
        let origin =
          ORecord
            (List.map
               (fun p ->
                 let name = List.hd (List.rev p) in
                 let base =
                   match translate origin p with b :: _ -> b | [] -> p
                 in
                 (name, base))
               ps)
        in
        let cur =
          Shape.record Fsdata_data.Data_value.json_record_name fields
        in
        go cur origin trie rest
    | Map p :: rest ->
        let* s, nullable = resolve cur p in
        let cur = if nullable then Shape.nullable s else s in
        let trie = touch trie origin p in
        let origin =
          match (origin, p) with
          | _, [] -> origin
          | OPath base, p -> OPath (base @ p)
          | ORecord m, f :: rest_p -> (
              match List.assoc_opt f m with
              | Some base -> OPath (base @ rest_p)
              | None -> OPath p)
        in
        go cur origin trie rest
    | Take n :: rest ->
        if n < 0 then
          Error
            { at = "."; expected = "a non-negative take count"; found = cur }
        else go cur origin trie rest
  in
  match go sigma (OPath []) (Fields []) q with
  | Ok (output, trie) ->
      Ok { query = q; input = sigma; pruned = prune sigma trie; output }
  | Error e ->
      Fsdata_obs.Metrics.incr m_rejected;
      Error e
