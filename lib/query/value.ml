open Fsdata_core
open Fsdata_data
open Shape_compile
open Syntax

type stats = { scanned : int; matched : int; skipped : int; malformed : int }
type result = { rows : tvalue list; stats : stats }

let m_docs = Fsdata_obs.Metrics.counter "query.docs"
let m_rows = Fsdata_obs.Metrics.counter "query.rows"
let m_skipped = Fsdata_obs.Metrics.counter "query.skipped"
let m_malformed = Fsdata_obs.Metrics.counter "query.malformed"

let record_stats s =
  Fsdata_obs.Metrics.add m_docs s.scanned;
  Fsdata_obs.Metrics.add m_rows s.matched;
  Fsdata_obs.Metrics.add m_skipped s.skipped;
  Fsdata_obs.Metrics.add m_malformed s.malformed

let is_null = function Vnull | Vany Data_value.Null -> true | _ -> false

let rec get v p =
  match p with
  | [] -> v
  | f :: rest -> (
      match v with
      | Vrecord (_, fields) -> (
          match Array.find_opt (fun (k, _) -> String.equal k f) fields with
          | Some (_, v') -> get v' rest
          | None -> Vnull)
      | Vany (Data_value.Record (_, dfields)) -> (
          match List.assoc_opt f dfields with
          | Some d -> get (Vany d) rest
          | None -> Vnull)
      | _ -> Vnull)

let exists v = not (is_null v)

(* Compare a row value with a literal; [None] when the two are not
   comparable (null, or a shape the checker would have rejected). *)
let compare_lit (v : tvalue) (lit : literal) : int option =
  match (v, lit) with
  | Vint i, Lint j -> Some (compare i j)
  | Vint i, Lfloat f -> Some (Float.compare (float_of_int i) f)
  | Vfloat f, Lint j -> Some (Float.compare f (float_of_int j))
  | Vfloat f, Lfloat g -> Some (Float.compare f g)
  | Vbool b, Lbool c -> Some (compare b c)
  | Vstring s, Lstring t -> Some (compare s t)
  | Vdate d, Lstring t -> (
      match Date.of_string t with
      | Some dt -> Some (Date.compare d dt)
      | None -> None)
  | _ -> None

let test_compare v (c : cmp) lit =
  match lit with
  | Lnull -> ( match c with Eq -> is_null v | Ne -> not (is_null v) | _ -> false)
  | _ -> (
      if is_null v then false
      else
        match compare_lit v lit with
        | None -> false
        | Some n -> (
            match c with
            | Eq -> n = 0
            | Ne -> n <> 0
            | Lt -> n < 0
            | Le -> n <= 0
            | Gt -> n > 0
            | Ge -> n >= 0))

let render v = Format.asprintf "%a" pp_tvalue v
