(* fsdata — command-line frontend for the F# Data reproduction.

   Subcommands:
     infer    infer and print the shape of sample documents (--paper for
              the core algebra, --global for per-element XML signatures)
     provide  print the provided type (F#-style signatures, Figure 8;
              --code for the generated member bodies)
     codegen  emit an OCaml module with typed access to the inferred shape
     check    validate a document against samples or a --shape expression,
              explaining any mismatch
     schema   export the inferred shape as a JSON Schema document
     sample   generate representative documents from a shape
     query    run a typed query over a JSON corpus
     serve    run the HTTP inference service and live shape registry
     migrate  rewrite a user program for a provider re-run with added
              samples (Remark 1's three transformations)
     watch    long-poll a served stream and print its version bumps *)

open Cmdliner
module Infer = Fsdata_core.Infer
module Par_infer = Fsdata_core.Par_infer
module Shape = Fsdata_core.Shape
module Preference = Fsdata_core.Preference
module Provide = Fsdata_provider.Provide
module Signature = Fsdata_provider.Signature
module Codegen = Fsdata_codegen.Codegen
module Diagnostic = Fsdata_data.Diagnostic
module Dv = Fsdata_data.Data_value

(* Exit code for "inference succeeded, but some samples were quarantined"
   — distinct from success (0) and from hard errors (cmdliner's 124 /
   check's 1), so scripts can tell a degraded run from a clean one. *)
let quarantine_exit_code = 3

module Obs_trace = Fsdata_obs.Trace
module Obs_metrics = Fsdata_obs.Metrics

(* --- observability flags (docs/OBSERVABILITY.md) --- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a span for every pipeline stage (parse, infer chunks and
           merges, provide, codegen) and write a Chrome $(b,trace_event)
           JSON document to $(docv) on exit. Load it in Perfetto
           (ui.perfetto.dev) or chrome://tracing; worker domains appear as
           separate threads. See $(b,docs/OBSERVABILITY.md).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record pipeline counters and histograms (samples ingested and
           quarantined, csh merges, per-format parse volume, chunk sizes,
           GC snapshots) and write them on exit as a single flat JSON
           object with keys in stable sorted order — $(b,-) for standard
           output. See $(b,docs/OBSERVABILITY.md).")

(* Runs before the command body (cmdliner evaluates the term's
   arguments first). The writers are registered with [at_exit] so they
   fire on every exit path, in particular the quarantine
   [Stdlib.exit 3] of {!finish_tolerant}. One callback handles both
   outputs so the [work] and [render] GC snapshots bracket trace
   serialization deterministically. *)
let setup_obs trace metrics =
  if trace <> None then Obs_trace.set_enabled true;
  if metrics <> None then begin
    Obs_metrics.set_enabled true;
    Obs_metrics.gc_snapshot "start"
  end;
  if trace <> None || metrics <> None then
    at_exit (fun () ->
        Obs_metrics.gc_snapshot "work";
        (match trace with
        | Some path ->
            let oc = open_out_bin path in
            output_string oc (Obs_trace.to_trace_event_json ());
            close_out oc
        | None -> ());
        Obs_metrics.gc_snapshot "render";
        match metrics with
        | Some "-" -> print_string (Obs_metrics.to_json ())
        | Some path ->
            let oc = open_out_bin path in
            output_string oc (Obs_metrics.to_json ());
            close_out oc
        | None -> ())

let obs_term = Term.(const setup_obs $ trace_arg $ metrics_arg)

type format = Json | Xml | Csv

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let detect_format path =
  match String.lowercase_ascii (Filename.extension path) with
  | ".json" -> Ok Json
  | ".xml" -> Ok Xml
  | ".csv" -> Ok Csv
  | ext -> Error (`Msg (Printf.sprintf "cannot detect format from extension %S (use --format)" ext))

let format_conv =
  Arg.enum [ ("json", Json); ("xml", Xml); ("csv", Csv) ]

let format_arg =
  Arg.(
    value
    & opt (some format_conv) None
    & info [ "f"; "format" ] ~docv:"FORMAT"
        ~doc:"Input format: $(b,json), $(b,xml) or $(b,csv). Defaults to the
              file extension.")

let samples_arg =
  Arg.(
    non_empty
    & pos_all file []
    & info [] ~docv:"SAMPLE"
        ~doc:"Sample document(s); multiple samples are merged with the
              common preferred shape, as with the provider's multi-sample
              static parameter.")

let root_name_arg =
  Arg.(
    value
    & opt string "Root"
    & info [ "root-name" ] ~docv:"NAME" ~doc:"Name seed for provided classes.")

let global_arg =
  Arg.(
    value & flag
    & info [ "g"; "global" ]
        ~doc:
          "XML only: use global inference — unify all elements with the
           same name across the samples (Section 6.2), allowing recursive
           document shapes.")

let csv_schema_arg =
  Arg.(
    value
    & opt string ""
    & info [ "csv-schema" ] ~docv:"SCHEMA"
        ~doc:"CSV only: column-type overrides, e.g.
              'Temp=float, Flag=bool?' (the CsvProvider Schema
              parameter).")

let resolve_format format paths =
  match format with
  | Some f -> Ok f
  | None -> ( match paths with [] -> Error (`Msg "no samples") | p :: _ -> detect_format p)

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Number of domains for parallel multi-sample inference; $(b,0)
           (the default) means the recommended domain count of the
           machine. Per-chunk shapes are merged with a balanced csh tree
           reduction, which is sound because csh is the least upper bound
           of Lemma 1; $(b,--jobs 1) forces the sequential fold.")

(* 0 = the recommended domain count (Par_infer's own default). *)
let effective_jobs jobs = if jobs <= 0 then Par_infer.recommended_jobs () else jobs

let budget_conv =
  let parse s =
    match Diagnostic.budget_of_string s with
    | Result.Ok b -> Ok b
    | Result.Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun ppf b -> Fmt.string ppf (Diagnostic.budget_to_string b))

let max_errors_arg =
  Arg.(
    value
    & opt (some budget_conv) None
    & info [ "max-errors" ] ~docv:"N|N%"
        ~doc:
          "Error budget for fault-tolerant inference: quarantine up to $(docv)
           malformed samples (an absolute count, or a percentage of the
           corpus such as $(b,5%)) instead of aborting on the first fault.
           Quarantined samples are skipped by the shape fold and reported;
           when any sample was quarantined the command exits with code
           $(b,3). Without this option (or with $(b,0)) any fault is
           fatal, exactly as before.")

let quarantine_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "quarantine" ] ~docv:"DIR"
        ~doc:
          "With $(b,--max-errors): write every quarantined sample and a
           machine-readable $(b,report.json) (format, global sample index,
           line/column, message per skipped sample) into $(docv).")

(* [jobs = 1] (the default) is the strictly sequential pipeline; commands
   exposing --jobs pass their flag through. *)
let read_files paths =
  Obs_trace.with_span "cli.read" @@ fun () -> List.map read_file paths

(* --- shape-compiled re-parsing (docs/COMPILED_PARSERS.md) --- *)

let compiled_arg =
  Arg.(
    value & flag
    & info [ "compiled" ]
        ~doc:
          "Drive the corpus through a parser compiled from the shape
           (JSON only): record fields matched by expected key, primitives
           decoded directly, with per-document fallback to the generic
           parser on mismatch. Output is byte-identical to the
           interpreted pipeline; the engine is observable through the
           $(b,compile.*) metrics and $(b,compile.parse) trace spans.
           See $(b,docs/COMPILED_PARSERS.md).")

(* Re-parse the input texts through a parser compiled from [shape],
   silently: documents that do not conform fall back per document, and
   malformed documents are skipped with the same resynchronization as
   the tolerant generic path. Printed output must stay byte-identical to
   the non-compiled run, so the outcome surfaces only through the
   compile.* instruments. *)
let compiled_reparse shape texts =
  let parser = Fsdata_core.Shape_compile.compile (Shape.hcons shape) in
  List.iter
    (fun text ->
      ignore
        (Fsdata_core.Shape_compile.parse_corpus
           ~on_fallback:(fun _ -> ())
           ~on_error:(fun _ ~skipped:_ -> ())
           parser text))
    texts

(* --compiled applies to JSON corpora in practical mode; reject the
   combinations whose semantics would silently differ. *)
let compiled_applicable ~compiled ~format ~paths =
  if not compiled then Ok ()
  else
    match resolve_format format paths with
    | Ok Json -> Ok ()
    | Ok _ -> Error "--compiled applies to JSON samples"
    | Error (`Msg m) -> Error m

let infer_shape ?(csv_schema = "") ?(jobs = 1) format paths =
  match resolve_format format paths with
  | Error e -> Error e
  | Ok f -> (
      let texts = read_files paths in
      let result =
        match f with
        | Json -> Par_infer.of_json_samples ~jobs texts
        | Xml -> Par_infer.of_xml_samples ~jobs texts
        | Csv -> (
            match texts with
            | [ one ] -> Fsdata_core.Csv_schema.infer_csv ~schema:csv_schema one
            | _ -> Error "csv: exactly one sample file is supported")
      in
      match result with
      | Ok shape -> Ok (f, shape)
      | Error msg -> Error (`Msg msg))

(* Fault-tolerant variant of {!infer_shape}: parse under an error budget,
   returning the whole {!Infer.report} so the caller can surface the
   quarantine. *)
let infer_shape_tolerant ?(csv_schema = "") ?(jobs = 1) ?(mode = `Practical)
    ~budget format paths =
  match resolve_format format paths with
  | Error e -> Error e
  | Ok f -> (
      let texts = read_files paths in
      let result =
        match (f, texts) with
        | Json, [ one ] ->
            (* a single file may hold a whitespace-separated document
               stream: ingest it through the recovering streaming driver,
               so a corrupt document costs one sample, not the file *)
            Par_infer.of_json_tolerant ~mode ~jobs ~budget one
        | Json, _ -> Par_infer.of_json_samples_tolerant ~mode ~jobs ~budget texts
        | Xml, _ -> Par_infer.of_xml_samples_tolerant ~jobs ~budget texts
        | Csv, _ -> (
            match texts with
            | [ one ] -> (
                match Infer.of_csv_tolerant ~budget one with
                | Error _ as e -> e
                | Ok report when csv_schema = "" -> Ok report
                | Ok report -> (
                    match Fsdata_core.Csv_schema.parse csv_schema with
                    | Error _ as e -> e
                    | Ok overrides -> (
                        match
                          Fsdata_core.Csv_schema.apply overrides
                            report.Infer.shape
                        with
                        | Ok shape -> Ok { report with Infer.shape }
                        | Error _ as e -> e)))
            | _ -> Error "csv: exactly one sample file is supported")
      in
      match result with
      | Ok report -> Ok (f, report)
      | Error msg -> Error (`Msg msg))

let format_extension = function Json -> ".json" | Xml -> ".xml" | Csv -> ".csv"

(* Write the skipped documents plus report.json into [dir]. The report
   lists one entry per quarantined sample: its format, global index,
   line/column, message, the input file it came from, and the name of
   the written copy. *)
let write_quarantine ~dir ~format:f ~paths ~budget (report : Infer.report) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let ext = format_extension f in
  let per_file = List.length paths = report.Infer.total in
  let source_of i =
    if per_file then List.nth paths i
    else match paths with [ p ] -> p | _ -> ""
  in
  let entry (q : Infer.quarantined) =
    let d = q.Infer.q_diagnostic in
    let written =
      match q.Infer.q_text with
      | None -> []
      | Some text ->
          let name = Printf.sprintf "sample-%d%s" q.Infer.q_index ext in
          let oc = open_out_bin (Filename.concat dir name) in
          output_string oc text;
          if text = "" || text.[String.length text - 1] <> '\n' then
            output_char oc '\n';
          close_out oc;
          [ ("file", Dv.String name) ]
    in
    Dv.Record
      ( Dv.json_record_name,
        [
          ("index", Dv.Int q.Infer.q_index);
          ("format", Dv.String (Diagnostic.format_name d.Diagnostic.format));
          ("line", Dv.Int d.Diagnostic.line);
          ("column", Dv.Int d.Diagnostic.column);
          ("severity", Dv.String (Diagnostic.severity_name d.Diagnostic.severity));
          ("message", Dv.String d.Diagnostic.message);
          ("source", Dv.String (source_of q.Infer.q_index));
        ]
        @ written )
  in
  let report_value =
    Dv.Record
      ( Dv.json_record_name,
        [
          ("total", Dv.Int report.Infer.total);
          ("quarantined", Dv.Int (List.length report.Infer.quarantined));
          ("budget", Dv.String (Diagnostic.budget_to_string budget));
          ("samples", Dv.List (List.map entry report.Infer.quarantined));
        ] )
  in
  let oc = open_out_bin (Filename.concat dir "report.json") in
  output_string oc (Fsdata_data.Json.to_string ~indent:2 report_value);
  output_char oc '\n';
  close_out oc

(* After a successful tolerant run: persist the quarantine if asked, then
   exit 0 on a clean corpus or with the distinct quarantine code. *)
let finish_tolerant ~quarantine ~format:f ~paths ~budget
    (report : Infer.report) =
  (match quarantine with
  | Some dir -> write_quarantine ~dir ~format:f ~paths ~budget report
  | None -> ());
  match report.Infer.quarantined with
  | [] -> `Ok ()
  | qs ->
      Printf.eprintf "fsdata: quarantined %d of %d samples%s\n"
        (List.length qs) report.Infer.total
        (match quarantine with
        | Some dir -> Printf.sprintf " (report in %s)" (Filename.concat dir "report.json")
        | None -> "");
      Stdlib.exit quarantine_exit_code

let provider_format = function Json -> `Json | Xml -> `Xml | Csv -> `Csv

(* --- infer --- *)

let infer_cmd =
  let paper_arg =
    Arg.(
      value & flag
      & info [ "paper" ]
          ~doc:
            "Use the paper's core algebra (Figure 3 verbatim): no literal
             classification, homogeneous collections. The default is the
             practical mode the library ships (Sections 6.2, 6.4).")
  in
  let run () format global paper compiled csv_schema jobs max_errors quarantine
      paths =
    let jobs = effective_jobs jobs in
    if quarantine <> None && max_errors = None then
      `Error (false, "--quarantine requires --max-errors")
    else if compiled && (global || paper) then
      `Error
        ( false,
          "--compiled uses practical-mode JSON semantics and applies to \
           neither --global nor --paper" )
    else
      match compiled_applicable ~compiled ~format ~paths with
      | Error m -> `Error (false, m)
      | Ok () ->
    if global then
      if max_errors <> None then
        `Error (false, "--max-errors does not apply to --global inference")
      else
        match List.map read_file paths |> Fsdata_core.Xml_global.of_strings with
        | Ok g ->
            Format.printf "%a@." Fsdata_core.Xml_global.pp g;
            `Ok ()
        | Error m -> `Error (false, m)
    else
      match max_errors with
      | Some budget -> (
          let mode = if paper then `Paper else `Practical in
          let paper_ok =
            if not paper then Ok ()
            else
              match resolve_format format paths with
              | Ok Json -> Ok ()
              | Ok _ -> Error "--paper applies to JSON samples"
              | Error (`Msg m) -> Error m
          in
          match paper_ok with
          | Error m -> `Error (false, m)
          | Ok () -> (
              match
                infer_shape_tolerant ~csv_schema ~jobs ~mode ~budget format
                  paths
              with
              | Error (`Msg m) -> `Error (false, m)
              | Ok (f, report) ->
                  Format.printf "%a@." Shape.pp report.Infer.shape;
                  if compiled then
                    compiled_reparse report.Infer.shape (read_files paths);
                  finish_tolerant ~quarantine ~format:f ~paths ~budget report))
      | None -> (
          if paper then
            match resolve_format format paths with
            | Error (`Msg m) -> `Error (false, m)
            | Ok Json -> (
                match
                  Par_infer.of_json_samples ~mode:`Paper ~jobs
                    (List.map read_file paths)
                with
                | Ok shape ->
                    Format.printf "%a@." Shape.pp shape;
                    `Ok ()
                | Error m -> `Error (false, m))
            | Ok _ -> `Error (false, "--paper applies to JSON samples")
          else
            match infer_shape ~csv_schema ~jobs format paths with
            | Ok (_, shape) ->
                Format.printf "%a@." Shape.pp shape;
                if compiled then compiled_reparse shape (read_files paths);
                `Ok ()
            | Error (`Msg m) -> `Error (false, m))
  in
  Cmd.v
    (Cmd.info "infer" ~doc:"Infer the shape of sample documents (Figure 3).")
    Term.(
      ret
        (const run $ obs_term $ format_arg $ global_arg $ paper_arg
       $ compiled_arg $ csv_schema_arg $ jobs_arg $ max_errors_arg
       $ quarantine_arg $ samples_arg))

(* --- provide --- *)

let provide_cmd =
  let code_arg =
    Arg.(
      value & flag
      & info [ "code" ]
          ~doc:
            "Print the full provided classes including the generated member
             bodies (the Foo-calculus code of Figure 8) instead of the
             signature summary.")
  in
  let print_provided ~code ~root_name (p : Provide.t) =
    if code then
      List.iter
        (fun c -> Format.printf "%a@.@." Fsdata_foo.Syntax.pp_class c)
        p.Provide.classes
    else print_endline (Signature.to_string ~root_name p)
  in
  let run () format global code csv_schema root_name paths =
    if global then
      match List.map read_file paths |> Provide.provide_xml_global with
      | Ok p ->
          print_provided ~code ~root_name p;
          `Ok ()
      | Error m -> `Error (false, m)
    else
      match infer_shape ~csv_schema format paths with
      | Ok (f, shape) ->
          let p = Provide.provide ~format:(provider_format f) ~root_name shape in
          if not code then Format.printf "// shape: %a@.@." Shape.pp shape;
          print_provided ~code ~root_name p;
          `Ok ()
      | Error (`Msg m) -> `Error (false, m)
  in
  Cmd.v
    (Cmd.info "provide"
       ~doc:"Show the type a provider generates for the samples (Figure 8).")
    Term.(
      ret
        (const run $ obs_term $ format_arg $ global_arg $ code_arg
       $ csv_schema_arg $ root_name_arg $ samples_arg))

(* --- sample --- *)

let sample_cmd =
  let shape_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "s"; "shape" ] ~docv:"SHAPE"
          ~doc:"Shape expression in the paper notation.")
  in
  let count_arg =
    Arg.(
      value & opt int 1
      & info [ "n"; "count" ] ~docv:"N" ~doc:"Number of documents to emit.")
  in
  let run shape count =
    match Fsdata_core.Shape_parser.parse_result shape with
    | Error m -> `Error (false, m)
    | Ok s -> (
        match Fsdata_core.Shape_gen.samples ~count s with
        | docs ->
            List.iter
              (fun d ->
                print_endline (Fsdata_data.Json.to_string ~indent:2 d))
              docs;
            `Ok ()
        | exception Invalid_argument m -> `Error (false, m))
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"Generate representative JSON documents conforming to a shape —
             the inverse of inference.")
    Term.(ret (const run $ shape_arg $ count_arg))

(* --- codegen --- *)

let codegen_cmd =
  let run () format csv_schema root_name jobs max_errors quarantine paths =
    let emit f shape =
      let p = Provide.provide ~format:(provider_format f) ~root_name shape in
      print_string
        (Codegen.generate
           ~module_comment:
             (Printf.sprintf "Generated by fsdata codegen from %s — do not edit."
                (String.concat ", " paths))
           p)
    in
    if quarantine <> None && max_errors = None then
      `Error (false, "--quarantine requires --max-errors")
    else
      match max_errors with
      | Some budget -> (
          match
            infer_shape_tolerant ~csv_schema ~jobs:(effective_jobs jobs)
              ~budget format paths
          with
          | Ok (f, report) ->
              emit f report.Infer.shape;
              finish_tolerant ~quarantine ~format:f ~paths ~budget report
          | Error (`Msg m) -> `Error (false, m))
      | None -> (
          match
            infer_shape ~csv_schema ~jobs:(effective_jobs jobs) format paths
          with
          | Ok (f, shape) ->
              emit f shape;
              `Ok ()
          | Error (`Msg m) -> `Error (false, m))
  in
  Cmd.v
    (Cmd.info "codegen"
       ~doc:"Emit an OCaml module giving statically typed access to data of
             the samples' shape.")
    Term.(
      ret
        (const run $ obs_term $ format_arg $ csv_schema_arg $ root_name_arg
       $ jobs_arg $ max_errors_arg $ quarantine_arg $ samples_arg))

(* --- check --- *)

let check_cmd =
  let input_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Document to validate.")
  in
  let shape_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "shape" ] ~docv:"SHAPE"
          ~doc:
            "Check against this shape expression (paper notation, e.g.
             '[• {name: string, age: nullable float}]') instead of
             inferring it from sample files.")
  in
  let run () format shape compiled jobs input paths =
    let jobs = effective_jobs jobs in
    let sample_shape =
      match shape with
      | Some text -> (
          match Fsdata_core.Shape_parser.parse_result text with
          | Ok s -> Ok (None, s)
          | Error m -> Error (`Msg m))
      | None -> (
          match paths with
          | [] -> Error (`Msg "provide sample files or --shape")
          | _ -> (
              match infer_shape ~jobs format paths with
              | Ok (f, s) -> Ok (Some f, s)
              | Error e -> Error e))
    in
    match sample_shape with
    | Error (`Msg m) -> `Error (false, m)
    | Ok (f, sample_shape) -> (
        match
          compiled_applicable ~compiled
            ~format:(match f with Some f -> Some f | None -> format)
            ~paths:[ input ]
        with
        | Error m -> `Error (false, m)
        | Ok () ->
        (* decode the input through the shape-compiled engine first: the
           printed verdict below is unchanged, but non-conforming (or
           malformed) documents exercise the per-document fallback, and
           the direct/fallback split lands in the compile.* metrics *)
        if compiled then compiled_reparse sample_shape [ read_file input ];
        match infer_shape (match f with Some f -> Some f | None -> format) [ input ] with
        | Error (`Msg m) -> `Error (false, m)
        | Ok (_, input_shape) ->
            if Preference.is_preferred input_shape sample_shape then begin
              print_endline
                "OK: the input's shape is preferred over the samples' shape;";
              print_endline
                "by relative safety (Theorem 3) all provided accesses are safe.";
              `Ok ()
            end
            else begin
              print_endline "MISMATCH:";
              Format.printf "  input:   %a@." Shape.pp input_shape;
              Format.printf "  samples: %a@." Shape.pp sample_shape;
              List.iter
                (fun m -> Format.printf "  - %a@." Fsdata_core.Explain.pp_mismatch m)
                (Fsdata_core.Explain.explain input_shape sample_shape);
              print_endline "Provided accesses may throw on this input.";
              Stdlib.exit 1
            end)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Check that a document conforms to the shape inferred from the
             samples (the premise of relative type safety).")
    Term.(
      ret
        (const run $ obs_term $ format_arg $ shape_arg $ compiled_arg
        $ jobs_arg $ input_arg
        $ Arg.(
            value & pos_all file []
            & info [] ~docv:"SAMPLE" ~doc:"Sample document(s).")))

(* --- schema --- *)

let schema_cmd =
  let run () format jobs max_errors quarantine paths =
    if quarantine <> None && max_errors = None then
      `Error (false, "--quarantine requires --max-errors")
    else
      match max_errors with
      | Some budget -> (
          match
            infer_shape_tolerant ~jobs:(effective_jobs jobs) ~budget format
              paths
          with
          | Ok (f, report) ->
              print_endline
                (Fsdata_codegen.Json_schema.to_string report.Infer.shape);
              finish_tolerant ~quarantine ~format:f ~paths ~budget report
          | Error (`Msg m) -> `Error (false, m))
      | None -> (
          match infer_shape ~jobs:(effective_jobs jobs) format paths with
          | Ok (_, shape) ->
              print_endline (Fsdata_codegen.Json_schema.to_string shape);
              `Ok ()
          | Error (`Msg m) -> `Error (false, m))
  in
  Cmd.v
    (Cmd.info "schema"
       ~doc:"Export the inferred shape of the samples as a JSON Schema
             (draft-07) document.")
    Term.(
      ret
        (const run $ obs_term $ format_arg $ jobs_arg $ max_errors_arg
       $ quarantine_arg $ samples_arg))

(* --- serve --- *)

let serve_cmd =
  let port_arg =
    Arg.(
      value & opt int 8080
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"Port to listen on; $(b,0) picks an ephemeral port (printed
                on startup, and written to $(b,--port-file) when given).")
  in
  let host_arg =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N"
          ~doc:"Worker domains serving connections. Inference itself can
                use further domains per request via the $(b,jobs) query
                parameter.")
  in
  let timeout_arg =
    Arg.(
      value & opt int 10_000
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Per-connection receive/send timeout in milliseconds; an
                idle keep-alive connection is closed after this long, and
                a half-sent request is answered $(b,408).")
  in
  let cache_arg =
    Arg.(
      value & opt int 64
      & info [ "cache-entries" ] ~docv:"N"
          ~doc:"Capacity of the LRU response cache for $(b,POST /infer),
                keyed by the digest of (format, jobs, budget, body);
                $(b,0) disables caching. Hits are marked with the
                $(b,X-Fsdata-Cache) response header.")
  in
  let port_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:"Write the bound port number to $(docv) once listening —
                for scripts that start the server with $(b,--port 0). The
                file is removed on every exit path, crashes included.")
  in
  let queue_depth_arg =
    Arg.(
      value & opt int 0
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Capacity of the bounded connection queue in front of the
                workers; connections beyond it are shed with $(b,503) and
                $(b,Retry-After). $(b,0) (the default) means
                $(i,workers) × 16.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 256
      & info [ "max-inflight-mb" ] ~docv:"MB"
          ~doc:"In-flight request-body budget across all workers, in
                mebibytes. A request whose declared $(b,Content-Length)
                does not fit the remaining budget is shed with $(b,503)
                and $(b,Retry-After) before its body is read, and
                $(b,/healthz) reports $(i,overloaded) once less than an
                eighth of the budget remains.")
  in
  let state_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:"Durable state directory for the live shape registry
                ($(b,/streams/*) endpoints): a checksummed write-ahead
                log plus periodic snapshots, recovered on startup.
                Without it the registry is in-memory only. See
                $(b,docs/REGISTRY.md).")
  in
  let fsync_arg =
    Arg.(
      value
      & opt (enum [ ("always", `Always); ("never", `Never) ]) `Always
      & info [ "fsync" ] ~docv:"POLICY"
          ~doc:"WAL durability: $(b,always) fsyncs before a push is
                acknowledged; $(b,never) leaves it to the OS (for
                benchmarks).")
  in
  let snapshot_every_arg =
    Arg.(
      value & opt int 512
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Compact the registry WAL into a snapshot every $(docv)
                records.")
  in
  let history_limit_arg =
    Arg.(
      value & opt int 256
      & info [ "history-limit" ] ~docv:"N"
          ~doc:"Version bumps each stream retains for
                $(b,/streams/NAME/history) and $(b,/diff) (oldest
                evicted first), bounding durable state for
                frequently-growing streams.")
  in
  let cache_ttl_arg =
    Arg.(
      value & opt int 0
      & info [ "cache-ttl-ms" ] ~docv:"MS"
          ~doc:"Time-to-live for cached responses; an expired entry is a
                miss. $(b,0) (the default) means entries never expire —
                eviction and $(b,POST /cache/invalidate) still apply.")
  in
  let max_waiters_arg =
    Arg.(
      value & opt int 64
      & info [ "max-waiters" ] ~docv:"N"
          ~doc:"Concurrent $(b,/streams/NAME/watch) long-polls admitted
                before further watchers are shed with $(b,503); each
                parked watcher occupies a worker domain.")
  in
  let hook_retry_arg =
    Arg.(
      value & opt int 50
      & info [ "hook-retry-ms" ] ~docv:"MS"
          ~doc:"First-retry backoff for webhook delivery; doubles per
                consecutive failure up to the delivery worker's ceiling.
                See $(b,docs/EVOLUTION.md).")
  in
  let run () port host workers timeout_ms cache_entries port_file queue_depth
      max_inflight_mb state_dir state_fsync snapshot_every history_limit
      cache_ttl_ms max_waiters hook_retry_ms =
    if workers < 1 then `Error (false, "--workers must be at least 1")
    else if timeout_ms < 1 then `Error (false, "--timeout-ms must be positive")
    else if queue_depth < 0 then
      `Error (false, "--queue-depth must not be negative")
    else if max_inflight_mb < 1 then
      `Error (false, "--max-inflight-mb must be at least 1")
    else if snapshot_every < 1 then
      `Error (false, "--snapshot-every must be at least 1")
    else if history_limit < 1 then
      `Error (false, "--history-limit must be at least 1")
    else if max_waiters < 1 then
      `Error (false, "--max-waiters must be at least 1")
    else if hook_retry_ms < 1 then
      `Error (false, "--hook-retry-ms must be positive")
    else begin
      match
        Fsdata_serve.Server.run
          {
            Fsdata_serve.Server.default_config with
            Fsdata_serve.Server.port;
            host;
            workers;
            timeout_ms;
            cache_entries;
            port_file;
            queue_depth;
            max_inflight_bytes = max_inflight_mb * 1024 * 1024;
            state_dir;
            state_fsync;
            snapshot_every;
            history_limit;
            cache_ttl_ms;
            max_waiters;
            hook_retry_ms;
          }
      with
      | () -> `Ok ()
      (* a locked --state-dir or corrupt registry state fails startup
         with a clean message, not a backtrace *)
      | exception Failure msg -> `Error (false, msg)
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the HTTP inference service: POST sample corpora to
             $(b,/infer) (with $(b,format), $(b,jobs) and $(b,max-errors)
             query parameters), documents to $(b,/check) and
             $(b,/explain), document batches to the live shape registry
             at $(b,/streams/NAME/push) (durable with $(b,--state-dir)),
             and scrape $(b,/metrics). Repeated corpora are answered
             from a digest-keyed LRU cache of hash-consed shapes. See
             $(b,docs/SERVING.md) and $(b,docs/REGISTRY.md).")
    Term.(
      ret
        (const run $ obs_term $ port_arg $ host_arg $ workers_arg
       $ timeout_arg $ cache_arg $ port_file_arg $ queue_depth_arg
       $ max_inflight_arg $ state_dir_arg $ fsync_arg $ snapshot_every_arg
       $ history_limit_arg $ cache_ttl_arg $ max_waiters_arg
       $ hook_retry_arg))

(* --- migrate --- *)

let migrate_cmd =
  let program_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "e"; "program" ] ~docv:"EXPR"
          ~doc:
            "User program over the old provided type, in the Foo concrete
             syntax, with the free variable $(b,y) standing for the
             provided root value (e.g. 'y.Name = y.Name').")
  in
  let old_arg =
    Arg.(
      required
      & opt (some file) None
      & info [ "old" ] ~docv:"SAMPLE" ~doc:"The original sample document.")
  in
  let new_arg =
    Arg.(
      non_empty
      & opt_all file []
      & info [ "new" ] ~docv:"SAMPLE"
          ~doc:"Additional sample(s) the provider is re-run with.")
  in
  let run format program old_path new_paths =
    match
      ( infer_shape format [ old_path ],
        infer_shape format (old_path :: new_paths) )
    with
    | Error (`Msg m), _ | _, Error (`Msg m) -> `Error (false, m)
    | Ok (f, old_shape), Ok (_, new_shape) -> (
        let old_provided = Provide.provide ~format:(provider_format f) old_shape in
        let new_provided = Provide.provide ~format:(provider_format f) new_shape in
        match Fsdata_foo.Parser.parse_expr_result program with
        | Error m -> `Error (false, m)
        | Ok e -> (
            match
              Fsdata_provider.Migrate.migrate ~old_provided ~new_provided e
            with
            | Ok e' ->
                Format.printf "%a@." Fsdata_foo.Syntax.pp_expr e';
                `Ok ()
            | Error err ->
                `Error (false, Fmt.str "%a" Fsdata_provider.Migrate.pp_error err)))
  in
  Cmd.v
    (Cmd.info "migrate"
       ~doc:"Rewrite a user program for a provider re-run with additional
             samples, applying the three local transformations of
             Section 6.5 (Remark 1) automatically.")
    Term.(ret (const run $ format_arg $ program_arg $ old_arg $ new_arg))

(* --- watch --- *)

let watch_cmd =
  let stream_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"STREAM" ~doc:"Stream name to watch.")
  in
  let url_arg =
    Arg.(
      value
      & opt string "http://127.0.0.1:8080"
      & info [ "url" ] ~docv:"URL"
          ~doc:"Base URL of the $(b,fsdata serve) instance.")
  in
  let since_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "since" ] ~docv:"V"
          ~doc:"Report version bumps past $(docv); without it the watch
                starts at the stream's current version, i.e. reports the
                next bump.")
  in
  let count_arg =
    Arg.(
      value & opt int 1
      & info [ "count" ] ~docv:"N" ~doc:"Exit after $(docv) version bumps.")
  in
  let timeout_arg =
    Arg.(
      value & opt int 30_000
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Per-poll long-poll budget; a poll that ends without a bump
                ($(b,204)) ends the watch with an error.")
  in
  let run () stream base since count timeout_ms =
    if count < 1 then `Error (false, "--count must be at least 1")
    else if timeout_ms < 1 then `Error (false, "--timeout-ms must be positive")
    else begin
      let module Client = Fsdata_evolve.Client in
      let base =
        let n = String.length base in
        if n > 0 && base.[n - 1] = '/' then String.sub base 0 (n - 1) else base
      in
      (* the socket timeout exceeds the long-poll budget: a healthy
         server always answers (bump or 204) within the budget *)
      let timeout_s = (float_of_int timeout_ms /. 1e3) +. 2. in
      let since = ref since in
      let remaining = ref count in
      let outcome = ref `Continue in
      while !remaining > 0 && !outcome = `Continue do
        let url =
          Printf.sprintf "%s/streams/%s/watch?timeout-ms=%d%s" base stream
            timeout_ms
            (match !since with
            | None -> ""
            | Some v -> Printf.sprintf "&since=%d" v)
        in
        match Client.request ~timeout_s ~meth:"GET" ~url () with
        | Error m -> outcome := `Fail m
        | Ok (204, _) ->
            outcome :=
              `Fail
                (Printf.sprintf
                   "watch timed out after %dms without a version bump"
                   timeout_ms)
        | Ok (200, body) -> (
            match Fsdata_data.Json.parse_result body with
            | Ok (Dv.Record (_, fields)) -> (
                match
                  ( List.assoc_opt "version" fields,
                    List.assoc_opt "shape" fields )
                with
                | Some (Dv.Int v), Some (Dv.String shape) ->
                    Printf.printf "%s v%d %s\n%!" stream v shape;
                    since := Some v;
                    decr remaining
                | _ -> outcome := `Fail ("malformed watch response: " ^ body))
            | Ok _ | Error _ ->
                outcome := `Fail ("malformed watch response: " ^ body))
        | Ok (status, body) ->
            outcome :=
              `Fail
                (Printf.sprintf "watch answered %d: %s" status
                   (String.trim body))
      done;
      match !outcome with `Fail m -> `Error (false, m) | `Continue -> `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Long-poll a served stream's $(b,/watch) endpoint and print one
             line per version bump ($(i,stream) $(b,v)$(i,N) $(i,shape))
             until $(b,--count) bumps have been seen. See
             $(b,docs/EVOLUTION.md).")
    Term.(
      ret
        (const run $ obs_term $ stream_arg $ url_arg $ since_arg $ count_arg
       $ timeout_arg))

(* --- query --- *)

let query_cmd =
  let query_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "q"; "query" ] ~docv:"QUERY"
          ~doc:
            "The query pipeline, e.g.
             'where .age >= 30 | select .name, .age | take 10'.
             See $(b,docs/QUERY.md) for the grammar and typing rules.")
  in
  let shape_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "s"; "shape" ] ~docv:"SHAPE"
          ~doc:
            "Check the query against this shape expression (paper
             notation) instead of inferring one from the corpus. With
             $(b,--shape), an ill-typed query is rejected before any
             corpus file is opened.")
  in
  let fast_arg =
    Arg.(
      value & flag
      & info [ "compiled" ]
          ~doc:
            "Evaluate with the compiled engine: documents are decoded by
             a parser compiled from the pruned shape straight into the
             query's projected slots, untouched fields skipped at the
             lexer level. Output is byte-identical to the reference
             evaluator (the default engine).")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print scan statistics (documents scanned, rows, skipped,
             malformed) to standard error after the rows.")
  in
  let corpus_arg =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"CORPUS"
          ~doc:
            "JSON corpus file(s): whitespace-separated top-level
             documents, each one row.")
  in
  let run () qtext shape compiled stats_flag paths =
    match Fsdata_query.Parser.parse_result qtext with
    | Error m -> `Error (false, m)
    | Ok query -> (
        let sigma =
          match shape with
          | Some text -> (
              match Fsdata_core.Shape_parser.parse_result text with
              | Ok s -> Ok (s, None)
              | Error m -> Error (`Msg m))
          | None -> (
              (* no --shape: infer σ from the corpus first (each file a
                 stream of whitespace-separated documents), keeping the
                 text around for the evaluation pass *)
              match
                try Ok (String.concat "\n" (read_files paths))
                with Sys_error m -> Error (`Msg m)
              with
              | Error e -> Error e
              | Ok src -> (
                  match Fsdata_core.Infer.of_json src with
                  | Ok s -> Ok (s, Some src)
                  | Error m -> Error (`Msg m)))
        in
        match sigma with
        | Error (`Msg m) -> `Error (false, m)
        | Ok (sigma, cached_src) -> (
            match Fsdata_query.Check.check sigma query with
            | Error e ->
                (* rejected before reading any corpus byte; exit code 2
                   distinguishes ill-typed queries from CLI errors *)
                Format.eprintf "query rejected: %a@."
                  Fsdata_query.Check.pp_error e;
                Stdlib.exit 2
            | Ok checked -> (
                match
                  match cached_src with
                  | Some src -> Ok src
                  | None -> (
                      try Ok (String.concat "\n" (read_files paths))
                      with Sys_error m -> Error m)
                with
                | Error m -> `Error (false, m)
                | Ok src ->
                    let result =
                      if compiled then
                        Fsdata_query.Eval_fast.eval
                          (Fsdata_query.Eval_fast.compile checked)
                          src
                      else Fsdata_query.Eval.eval checked src
                    in
                    List.iter
                      (fun r -> print_endline (Fsdata_query.Value.render r))
                      result.Fsdata_query.Value.rows;
                    let st = result.Fsdata_query.Value.stats in
                    if stats_flag then
                      Format.eprintf
                        "query: scanned %d, rows %d, skipped %d, malformed %d@."
                        st.Fsdata_query.Value.scanned
                        st.Fsdata_query.Value.matched
                        st.Fsdata_query.Value.skipped
                        st.Fsdata_query.Value.malformed;
                    `Ok ())))
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Run a typed query over a JSON corpus: the query is shape-checked
          against the inferred (or given) shape before execution, then
          streamed over the documents — one JSON row per output line.
          Ill-typed queries are rejected with the offending path and
          expected shape (exit code 2).")
    Term.(
      ret
        (const run $ obs_term $ query_arg $ shape_arg $ fast_arg $ stats_arg
       $ corpus_arg))

let main =
  Cmd.group
    (Cmd.info "fsdata" ~version:"1.0.0"
       ~doc:"Types from data: shape inference and type providers for JSON, \
             XML and CSV (PLDI 2016 reproduction).")
    [
      infer_cmd; provide_cmd; codegen_cmd; check_cmd; schema_cmd; sample_cmd;
      query_cmd; serve_cmd; migrate_cmd; watch_cmd;
    ]

let () = exit (Cmd.eval main)
